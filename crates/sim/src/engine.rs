//! The synchronous execution engine.
//!
//! Implements the paper's model (§2): `n` processors in lockstep rounds
//! over a fully reliable complete network, with a distinguished source and
//! a full-information rushing adversary controlling the faulty set.
//!
//! Each round the engine:
//!
//! 1. collects every honest processor's broadcast;
//! 2. runs *shadow* copies of faulty processors to learn what they would
//!    have sent honestly, and shows both to the adversary;
//! 3. asks the adversary for a payload per (faulty sender, recipient);
//! 4. delivers complete inboxes to every processor (real and shadow);
//! 5. accounts honest traffic, local work and peak space.
//!
//! # Allocation discipline
//!
//! Large sweeps execute millions of rounds, so the round loop is
//! allocation-lean: all per-round buffers (broadcast tables, the faulty
//! payload matrix, the delivery inbox) live in a [`RunArena`] that is
//! recycled across rounds *and* across runs through a thread-local pool.
//! Combined with [`Payload::into_shared`]'s interning of missing and
//! single-bit payloads, a steady-state Phase-King round allocates nothing
//! on the engine side.

use std::cell::RefCell;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::adversary::{Adversary, AdversaryView};
use crate::id::{ProcessId, ProcessSet};
use crate::metrics::{Metrics, RoundStats};
use crate::payload::Payload;
use crate::protocol::{Inbox, ProcCtx, Protocol};
use crate::sig::SigRegistry;
use crate::trace::Trace;
use crate::value::{Value, ValueDomain};

/// Static parameters of one execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunConfig {
    /// System size.
    pub n: usize,
    /// Fault bound the protocol is instantiated for.
    pub t: usize,
    /// The distinguished source processor.
    pub source: ProcessId,
    /// The source's initial value.
    pub source_value: Value,
    /// The agreement value domain.
    pub domain: ValueDomain,
    /// Whether to collect trace events.
    pub trace: bool,
    /// Whether to attach a signature registry (authenticated baselines).
    pub authenticated: bool,
}

impl RunConfig {
    /// A standard configuration: source `P0`, source value 1, binary
    /// domain, no tracing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the implied source index is out of range.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(n > 0, "need at least one processor");
        RunConfig {
            n,
            t,
            source: ProcessId(0),
            source_value: Value(1),
            domain: ValueDomain::binary(),
            trace: false,
            authenticated: false,
        }
    }

    /// Sets the source's initial value.
    pub fn with_source_value(mut self, v: Value) -> Self {
        self.source_value = v;
        self
    }

    /// Sets the value domain.
    pub fn with_domain(mut self, domain: ValueDomain) -> Self {
        self.domain = domain;
        self
    }

    /// Enables tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Attaches a signature registry for authenticated baselines.
    pub fn with_authentication(mut self) -> Self {
        self.authenticated = true;
        self
    }
}

/// The result of one execution.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The configuration that produced this outcome.
    pub config: RunConfig,
    /// The corrupted set the adversary chose.
    pub faulty: ProcessSet,
    /// Decision of each processor; `None` for faulty processors.
    pub decisions: Vec<Option<Value>>,
    /// Rounds executed.
    pub rounds_used: usize,
    /// Traffic / computation / space metrics.
    pub metrics: Metrics,
    /// Trace events (empty unless tracing was enabled).
    pub trace: Trace,
    /// The adversary's strategy name.
    pub adversary: String,
}

impl Outcome {
    /// Single pass over the decisions: whether all correct processors
    /// decided the same value, and — when they did — that value (the
    /// first correct processor's decision; `None` when no processor is
    /// correct). [`Outcome::agreement`], [`Outcome::decision`] and
    /// [`Outcome::assert_correct`] are all views of this one scan.
    fn consensus(&self) -> (bool, Option<Value>) {
        let mut seen: Option<Value> = None;
        for (i, d) in self.decisions.iter().enumerate() {
            if self.faulty.contains(ProcessId(i)) {
                continue;
            }
            match (seen, d) {
                (None, Some(v)) => seen = Some(*v),
                (Some(prev), Some(v)) if prev != *v => return (false, None),
                (_, None) => return (false, None),
                _ => {}
            }
        }
        (true, seen)
    }

    /// Whether all correct processors decided on the same value
    /// (the paper's agreement condition).
    pub fn agreement(&self) -> bool {
        self.consensus().0
    }

    /// Whether the validity condition holds: if the source is correct,
    /// every correct processor decided the source's initial value.
    /// Returns `None` when the source is faulty (condition is vacuous).
    pub fn validity(&self) -> Option<bool> {
        if self.faulty.contains(self.config.source) {
            return None;
        }
        let want = self.config.source_value;
        Some(
            self.decisions
                .iter()
                .enumerate()
                .all(|(i, d)| self.faulty.contains(ProcessId(i)) || *d == Some(want)),
        )
    }

    /// The common decision value if agreement holds.
    pub fn decision(&self) -> Option<Value> {
        self.consensus().1
    }

    /// Asserts agreement and validity, panicking with diagnostics
    /// otherwise. Convenient in tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if agreement fails, or if the source is correct and some
    /// correct processor decided a different value.
    pub fn assert_correct(&self) {
        let (agreement, _) = self.consensus();
        assert!(
            agreement,
            "agreement violated (adversary {}, faulty {}): decisions {:?}",
            self.adversary, self.faulty, self.decisions
        );
        if let Some(valid) = self.validity() {
            assert!(
                valid,
                "validity violated (adversary {}, faulty {}, source value {}): decisions {:?}",
                self.adversary, self.faulty, self.config.source_value, self.decisions
            );
        }
    }
}

/// Reusable execution buffers: broadcast tables, the faulty payload
/// matrix, and the delivery inbox.
///
/// One arena serves one execution at a time; [`run`] recycles arenas
/// through a thread-local pool so back-to-back runs (the sweep engine's
/// steady state) reuse the same heap blocks. All buffers are fully
/// overwritten at the start of each use, so no state flows between
/// consecutive runs — `tests/sweep_determinism.rs` pins this down.
#[derive(Default)]
pub struct RunArena {
    honest: Vec<Option<Arc<Payload>>>,
    shadow: Vec<Option<Arc<Payload>>>,
    /// `rows[sender][recipient]`, used only for faulty senders.
    rows: Vec<Vec<Arc<Payload>>>,
    inbox: Option<Inbox>,
}

impl RunArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        RunArena::default()
    }

    /// Sizes every buffer for an `n`-processor run and clears payloads
    /// retained from any previous run (dropping stale `Arc`s).
    fn reset(&mut self, n: usize) {
        self.honest.clear();
        self.honest.resize(n, None);
        self.shadow.clear();
        self.shadow.resize(n, None);
        self.rows.resize_with(n, Vec::new);
        for row in &mut self.rows {
            row.clear();
            row.resize_with(n, Payload::shared_missing);
        }
        match &mut self.inbox {
            Some(inbox) if inbox.n() == n => {
                for j in 0..n {
                    inbox.set_shared(ProcessId(j), Payload::shared_missing());
                }
            }
            slot => *slot = Some(Inbox::empty(n)),
        }
    }
}

thread_local! {
    /// Pool of arenas recycled across runs on this thread.
    static ARENA_POOL: RefCell<Vec<RunArena>> = const { RefCell::new(Vec::new()) };
}

/// How many idle arenas each thread keeps (runs never nest deeper than
/// protocol-in-protocol compositions, so a handful is plenty).
const ARENA_POOL_CAP: usize = 4;

/// Runs one execution of `protocol` (instantiated per processor by `mk`)
/// against `adversary`.
///
/// `mk` is called once per processor with its [`ProcessId`]; it must embed
/// the configuration (including the source's initial value for the source
/// processor). Shadow instances for faulty processors are created with the
/// same factory and driven honestly so the adversary can see what an
/// honest version would send.
///
/// Buffers come from this thread's arena pool; see [`RunArena`].
///
/// # Panics
///
/// Panics if protocol instances disagree on `total_rounds` — every
/// processor must follow the same deterministic schedule.
pub fn run<F>(config: &RunConfig, adversary: &mut dyn Adversary, mk: F) -> Outcome
where
    F: Fn(ProcessId) -> Box<dyn Protocol>,
{
    let mut arena = ARENA_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    let outcome = run_in(&mut arena, config, adversary, mk);
    ARENA_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < ARENA_POOL_CAP {
            pool.push(arena);
        }
    });
    outcome
}

/// Like [`run`], but with caller-supplied buffers — the allocation-free
/// path for callers that loop over many executions and want to hold one
/// arena across all of them.
pub fn run_in<F>(
    arena: &mut RunArena,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
    mk: F,
) -> Outcome
where
    F: Fn(ProcessId) -> Box<dyn Protocol>,
{
    let n = config.n;
    arena.reset(n);
    let faulty = adversary.corrupt(n, config.t, config.source);
    assert_eq!(faulty.universe(), n, "fault set universe must match n");

    let sigs = config
        .authenticated
        .then(|| Arc::new(Mutex::new(SigRegistry::new())));

    let mut protocols: Vec<Box<dyn Protocol>> = (0..n).map(|i| mk(ProcessId(i))).collect();
    let mut ctxs: Vec<ProcCtx> = (0..n)
        .map(|i| {
            let mut ctx = ProcCtx::new(ProcessId(i));
            if config.trace && !faulty.contains(ProcessId(i)) {
                ctx = ctx.with_trace();
            }
            if let Some(s) = &sigs {
                ctx = ctx.with_sigs(s.clone());
            }
            ctx
        })
        .collect();

    let total_rounds = protocols[0].total_rounds();
    for p in &protocols {
        assert_eq!(
            p.total_rounds(),
            total_rounds,
            "all processors must agree on the round schedule"
        );
    }

    let mut metrics = Metrics::new(n);
    let bits_per_value = config.domain.bits_per_value();

    for round in 1..=total_rounds {
        for ctx in ctxs.iter_mut() {
            ctx.round = round;
        }

        // 1. Honest broadcasts and shadow broadcasts (shared, not cloned
        // per recipient: EIG payloads are large). Both tables are fully
        // overwritten every round, so arena reuse leaks nothing.
        for i in 0..n {
            let p = ProcessId(i);
            let out = protocols[i]
                .outgoing(&mut ctxs[i])
                .map(Payload::into_shared);
            if faulty.contains(p) {
                arena.shadow[i] = out;
                arena.honest[i] = None;
            } else {
                arena.honest[i] = out;
                arena.shadow[i] = None;
            }
        }

        // 2. Traffic accounting for honest senders (broadcast = n−1 messages).
        let mut stats = RoundStats {
            round,
            ..RoundStats::default()
        };
        for payload in arena.honest.iter().flatten() {
            let values = payload.num_values() as u64;
            let bits = payload.bits(bits_per_value);
            let fanout = (n - 1) as u64;
            stats.honest_messages += fanout;
            stats.honest_values += values * fanout;
            stats.honest_bits += bits * fanout;
            stats.max_message_values = stats.max_message_values.max(values);
            stats.max_message_bits = stats.max_message_bits.max(bits);
        }
        metrics.per_round.push(stats);

        // 3. Adversary chooses faulty payloads, seeing all honest traffic.
        let view = AdversaryView {
            round,
            total_rounds,
            n,
            t: config.t,
            source: config.source,
            source_value: config.source_value,
            domain: config.domain,
            faulty: &faulty,
            honest_broadcast: &arena.honest,
            shadow_broadcast: &arena.shadow,
            sigs: sigs.clone(),
        };
        // Faulty payload matrix, `rows[sender][recipient]`: every slot of
        // each faulty row is overwritten every round (the self slot with
        // the interned missing payload), so row reuse leaks nothing.
        // Honest rows are never read.
        for f in faulty.iter() {
            for r in 0..n {
                arena.rows[f.index()][r] = if r == f.index() {
                    Payload::shared_missing()
                } else {
                    adversary.payload(f, ProcessId(r), &view).into_shared()
                };
            }
        }
        let RunArena {
            honest,
            rows,
            inbox,
            ..
        } = &mut *arena;
        let inbox = inbox.as_mut().expect("arena reset installed an inbox");

        // 4. Deliver complete inboxes to every processor (incl. shadows),
        // reusing one inbox: every sender slot is overwritten for every
        // recipient (the self slot with the interned missing payload).
        for i in 0..n {
            for j in 0..n {
                let q = ProcessId(j);
                let payload = if i == j {
                    Payload::shared_missing()
                } else if faulty.contains(q) {
                    rows[j][i].clone()
                } else {
                    honest[j].clone().unwrap_or_else(Payload::shared_missing)
                };
                inbox.set_shared(q, payload);
            }
            protocols[i].deliver(inbox, &mut ctxs[i]);
        }

        // 5. Peak-space sampling (honest processors only).
        for i in 0..n {
            if !faulty.contains(ProcessId(i)) {
                metrics.peak_tree_nodes = metrics.peak_tree_nodes.max(protocols[i].space_nodes());
            }
        }
    }

    // Decisions.
    for ctx in ctxs.iter_mut() {
        ctx.round = 0;
    }
    let mut decisions = vec![None; n];
    for i in 0..n {
        if !faulty.contains(ProcessId(i)) {
            decisions[i] = Some(protocols[i].decide(&mut ctxs[i]));
        }
    }

    // Collect per-processor accounting.
    let mut trace = Trace::new();
    for (i, ctx) in ctxs.iter_mut().enumerate() {
        metrics.local_ops[i] = ctx.ops();
        ctx.drain_trace_into(&mut trace);
    }

    Outcome {
        config: *config,
        faulty,
        decisions,
        rounds_used: total_rounds,
        metrics,
        trace,
        adversary: adversary.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NoFaults;

    /// A toy 1-round protocol: the source broadcasts its value; everyone
    /// else decides the received value (no fault tolerance).
    struct Toy {
        me: ProcessId,
        source: ProcessId,
        value: Value,
        got: Value,
    }

    impl Protocol for Toy {
        fn total_rounds(&self) -> usize {
            1
        }

        fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
            ctx.charge(1);
            (self.me == self.source).then(|| Payload::values([self.value]))
        }

        fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
            ctx.charge(1);
            if self.me != self.source {
                self.got = inbox.from(self.source).value_at(0).unwrap_or_default();
            } else {
                self.got = self.value;
            }
        }

        fn decide(&mut self, _ctx: &mut ProcCtx) -> Value {
            self.got
        }
    }

    fn toy_factory(config: &RunConfig) -> impl Fn(ProcessId) -> Box<dyn Protocol> + '_ {
        move |me| {
            Box::new(Toy {
                me,
                source: config.source,
                value: config.source_value,
                got: Value::DEFAULT,
            })
        }
    }

    #[test]
    fn fault_free_toy_run_agrees() {
        let config = RunConfig::new(4, 0).with_source_value(Value(1));
        let outcome = run(&config, &mut NoFaults, toy_factory(&config));
        outcome.assert_correct();
        assert_eq!(outcome.decision(), Some(Value(1)));
        assert_eq!(outcome.rounds_used, 1);
    }

    #[test]
    fn traffic_accounting_counts_broadcast_fanout() {
        let config = RunConfig::new(5, 0);
        let outcome = run(&config, &mut NoFaults, toy_factory(&config));
        // Only the source sends: 1 value to each of 4 peers, 1 bit each.
        let r1 = &outcome.metrics.per_round[0];
        assert_eq!(r1.honest_messages, 4);
        assert_eq!(r1.honest_values, 4);
        assert_eq!(r1.honest_bits, 4);
        assert_eq!(r1.max_message_values, 1);
    }

    #[test]
    fn local_ops_recorded_per_processor() {
        let config = RunConfig::new(3, 0);
        let outcome = run(&config, &mut NoFaults, toy_factory(&config));
        // Each processor charged 1 in outgoing + 1 in deliver.
        assert_eq!(outcome.metrics.local_ops, vec![2, 2, 2]);
    }

    #[test]
    fn agreement_detects_divergence() {
        let config = RunConfig::new(3, 0);
        let mut outcome = run(&config, &mut NoFaults, toy_factory(&config));
        outcome.decisions[2] = Some(Value(0));
        assert!(!outcome.agreement());
        assert_eq!(outcome.decision(), None);
    }
}
