//! The synchronous execution engine.
//!
//! Implements the paper's model (§2): `n` processors in lockstep rounds
//! over a fully reliable complete network, with a distinguished source and
//! a full-information rushing adversary controlling the faulty set.
//!
//! Each round the engine:
//!
//! 1. collects every honest processor's broadcast;
//! 2. runs *shadow* copies of faulty processors to learn what they would
//!    have sent honestly, and shows both to the adversary;
//! 3. asks the adversary for a payload per (faulty sender, recipient);
//! 4. delivers complete inboxes to every processor (real and shadow);
//! 5. accounts honest traffic, local work and peak space;
//! 6. consults every correct processor's [`Protocol::round_status`] and
//!    terminates the run early once all of them are ready to decide —
//!    the paper's *expedite* dividend, measurable as
//!    [`Outcome::rounds_used`]` < `[`Outcome::scheduled_rounds`].
//!    [`set_early_stopping`]`(false)` restores fixed-length execution
//!    (bit-identical to the pre-early-stopping engine);
//! 7. consults every correct processor's [`Protocol::next_action`] — the
//!    dynamic-schedule dispatch. The run loop is no longer a fixed
//!    `for round in 1..=total_rounds()`: protocols choose their next
//!    segment at runtime ([`crate::GearAction`]), the engine commits a
//!    gear shift on a unanimous correct-processor proposal (calling
//!    [`Protocol::shift_gear`] on every instance, shadows included), and
//!    the run ends when every correct processor reports its schedule
//!    finished. The default `next_action` replays the static schedule,
//!    so fixed-schedule protocols execute bit-identically to the
//!    pre-dynamic engine; `total_rounds()` stays a hard ceiling the
//!    engine never exceeds. Dynamic dispatch is part of the protocol's
//!    schedule, not an observation optimization, so it stays active
//!    under [`set_early_stopping`]`(false)`.
//!
//! # Allocation discipline
//!
//! Large sweeps execute millions of rounds, so the round loop is
//! allocation-lean: all per-round buffers (broadcast tables, the faulty
//! payload matrix, the delivery inbox, the per-processor contexts) live
//! in a [`RunArena`] that is recycled across rounds *and* across runs
//! through a thread-local pool, and protocol *instances* are recycled
//! through the arena's keyed [instance pool](PoolKey) via
//! [`Protocol::reset`] — the factory is only consulted on a pool miss.
//! Combined with [`Payload::into_shared`]'s interning of missing,
//! single-bit and `⊥`-sentinel payloads, a steady-state binary-domain
//! king round allocates nothing on the engine side.
//!
//! # Bit-packed binary fast path
//!
//! For binary-domain runs at `n ≤ 64` the engine additionally attaches a
//! [`PackedBallots`] view to each delivered inbox: one bit per sender for
//! single-value broadcasts, letting receivers tally majorities and
//! thresholds with `count_ones()` word operations instead of touching
//! `n` reference-counted payloads. The view is derived from the inbox
//! contents after every slot is filled, so the packed and unpacked read
//! paths are bit-identical by construction; [`set_packed_broadcast`]
//! turns it off for A/B benchmarking.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::adversary::{Adversary, AdversaryView};
use crate::id::{ProcessId, ProcessSet};
use crate::metrics::{Metrics, RoundStats};
use crate::payload::Payload;
use crate::protocol::{GearAction, Inbox, PackedBallots, ProcCtx, Protocol, RoundStatus};
use crate::sig::SigRegistry;
use crate::trace::Trace;
use crate::value::{Value, ValueDomain};

/// Whether [`run_pooled`]/[`run_pooled_in`] recycle protocol instances
/// (`true` by default). The CLI's `--no-instance-pool` escape hatch
/// clears it; CI runs the benchmark sweep both ways and cross-checks the
/// report fingerprints.
static INSTANCE_POOLING: AtomicBool = AtomicBool::new(true);

/// Whether the engine attaches [`PackedBallots`] views to delivered
/// inboxes (`true` by default). Off, receivers take their per-payload
/// fallback paths — the knob the criterion benches use to measure the
/// bit-packed layer in isolation.
static PACKED_BROADCAST: AtomicBool = AtomicBool::new(true);

/// Whether the engine terminates a run early once every correct
/// processor reports [`RoundStatus::ReadyToDecide`] (`true` by default).
/// Off, every run executes its full static `total_rounds` schedule —
/// the fixed-length behaviour all pre-early-stopping fingerprints were
/// recorded under; CI cross-checks that mode against the committed
/// `BENCH_sweep_fixed.json` reference.
static EARLY_STOPPING: AtomicBool = AtomicBool::new(true);

/// Enables or disables protocol-instance pooling (default on).
pub fn set_instance_pooling(enabled: bool) {
    INSTANCE_POOLING.store(enabled, Ordering::SeqCst);
}

/// Whether protocol-instance pooling is active.
pub fn instance_pooling_enabled() -> bool {
    INSTANCE_POOLING.load(Ordering::SeqCst)
}

/// Enables or disables the bit-packed broadcast view (default on).
pub fn set_packed_broadcast(enabled: bool) {
    PACKED_BROADCAST.store(enabled, Ordering::SeqCst);
}

/// Whether the bit-packed broadcast view is active.
pub fn packed_broadcast_enabled() -> bool {
    PACKED_BROADCAST.load(Ordering::SeqCst)
}

/// Enables or disables status-driven early stopping (default on). The
/// toggle is read once at the start of each run, so a run is always
/// entirely early-stopping or entirely fixed-length.
pub fn set_early_stopping(enabled: bool) {
    EARLY_STOPPING.store(enabled, Ordering::SeqCst);
}

/// Whether status-driven early stopping is active.
pub fn early_stopping_enabled() -> bool {
    EARLY_STOPPING.load(Ordering::SeqCst)
}

/// Identifies one protocol family + configuration *shape* for instance
/// pooling: two runs may share pooled instances only if their keys are
/// equal. The key must capture everything [`Protocol::reset`] cannot
/// re-derive from its arguments — the algorithm (including block
/// parameters), `n`, `t`, and anything else that shapes the instance's
/// round plan or internal structures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PoolKey(u64);

impl PoolKey {
    /// A key from a pre-mixed hash.
    pub const fn from_raw(raw: u64) -> Self {
        PoolKey(raw)
    }

    /// The mixed hash, for composing keys of composite protocols.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// FNV-1a over the given words — allocation-free, so computing a key
    /// per run costs nothing.
    pub fn of(words: &[u64]) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        PoolKey(h)
    }
}

/// Static parameters of one execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunConfig {
    /// System size.
    pub n: usize,
    /// Fault bound the protocol is instantiated for.
    pub t: usize,
    /// The distinguished source processor.
    pub source: ProcessId,
    /// The source's initial value.
    pub source_value: Value,
    /// The agreement value domain.
    pub domain: ValueDomain,
    /// Whether to collect trace events.
    pub trace: bool,
    /// Whether to attach a signature registry (authenticated baselines).
    pub authenticated: bool,
}

impl RunConfig {
    /// A standard configuration: source `P0`, source value 1, binary
    /// domain, no tracing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the implied source index is out of range.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(n > 0, "need at least one processor");
        RunConfig {
            n,
            t,
            source: ProcessId(0),
            source_value: Value(1),
            domain: ValueDomain::binary(),
            trace: false,
            authenticated: false,
        }
    }

    /// Sets the source's initial value.
    pub fn with_source_value(mut self, v: Value) -> Self {
        self.source_value = v;
        self
    }

    /// Sets the value domain.
    pub fn with_domain(mut self, domain: ValueDomain) -> Self {
        self.domain = domain;
        self
    }

    /// Enables tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Attaches a signature registry for authenticated baselines.
    pub fn with_authentication(mut self) -> Self {
        self.authenticated = true;
        self
    }
}

/// The result of one execution.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The configuration that produced this outcome.
    pub config: RunConfig,
    /// The corrupted set the adversary chose.
    pub faulty: ProcessSet,
    /// Decision of each processor; `None` for faulty processors.
    pub decisions: Vec<Option<Value>>,
    /// Rounds actually executed: the round after which every correct
    /// processor was [`RoundStatus::ReadyToDecide`] (status-driven early
    /// stopping) or reported [`GearAction::Finished`] (a dynamically
    /// shortened schedule). Equals [`Outcome::scheduled_rounds`] for a
    /// fixed-schedule run that never stopped early.
    pub rounds_used: usize,
    /// The protocol's worst-case schedule length
    /// (`Protocol::total_rounds`) — for dynamic protocols, the longest
    /// schedule any gear sequence can produce.
    pub scheduled_rounds: usize,
    /// Whether the run terminated before its worst-case schedule ended,
    /// whether by status-driven early stopping or by a dynamic gear
    /// shift shortening the schedule.
    pub early_stopped: bool,
    /// Traffic / computation / space metrics (round-resolved: one
    /// [`RoundStats`] entry per round actually executed).
    pub metrics: Metrics,
    /// Trace events (empty unless tracing was enabled).
    pub trace: Trace,
    /// The adversary's strategy name (shared, so pooled sweeps do not
    /// allocate a name per run).
    pub adversary: Arc<str>,
}

impl Outcome {
    /// An empty, reusable outcome buffer for the `*_into` entry points
    /// ([`run_into`], [`run_pooled_into`]): every field is overwritten by
    /// the next run, and the vectors inside (decisions, per-round
    /// metrics, local-ops, trace) keep their capacity across runs — the
    /// streaming path that retires the engine's last per-run result
    /// allocations.
    pub fn buffer() -> Self {
        Outcome {
            config: RunConfig::new(1, 0),
            faulty: ProcessSet::new(1),
            decisions: Vec::new(),
            rounds_used: 0,
            scheduled_rounds: 0,
            early_stopped: false,
            metrics: Metrics::new(0),
            trace: Trace::new(),
            adversary: Arc::from(""),
        }
    }

    /// Single pass over the decisions: whether all correct processors
    /// decided the same value, and — when they did — that value (the
    /// first correct processor's decision; `None` when no processor is
    /// correct). [`Outcome::agreement`], [`Outcome::decision`] and
    /// [`Outcome::assert_correct`] are all views of this one scan.
    fn consensus(&self) -> (bool, Option<Value>) {
        let mut seen: Option<Value> = None;
        for (i, d) in self.decisions.iter().enumerate() {
            if self.faulty.contains(ProcessId(i)) {
                continue;
            }
            match (seen, d) {
                (None, Some(v)) => seen = Some(*v),
                (Some(prev), Some(v)) if prev != *v => return (false, None),
                (_, None) => return (false, None),
                _ => {}
            }
        }
        (true, seen)
    }

    /// Whether all correct processors decided on the same value
    /// (the paper's agreement condition).
    pub fn agreement(&self) -> bool {
        self.consensus().0
    }

    /// Whether the validity condition holds: if the source is correct,
    /// every correct processor decided the source's initial value.
    /// Returns `None` when the source is faulty (condition is vacuous).
    pub fn validity(&self) -> Option<bool> {
        if self.faulty.contains(self.config.source) {
            return None;
        }
        let want = self.config.source_value;
        Some(
            self.decisions
                .iter()
                .enumerate()
                .all(|(i, d)| self.faulty.contains(ProcessId(i)) || *d == Some(want)),
        )
    }

    /// The common decision value if agreement holds.
    pub fn decision(&self) -> Option<Value> {
        self.consensus().1
    }

    /// Rounds the run saved against its static schedule — the paper's
    /// expedite quantity (0 unless the run early-stopped).
    pub fn rounds_saved(&self) -> usize {
        self.scheduled_rounds - self.rounds_used
    }

    /// Asserts agreement and validity, panicking with diagnostics
    /// otherwise. Convenient in tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if agreement fails, or if the source is correct and some
    /// correct processor decided a different value.
    pub fn assert_correct(&self) {
        let (agreement, _) = self.consensus();
        assert!(
            agreement,
            "agreement violated (adversary {}, faulty {}): decisions {:?}",
            self.adversary, self.faulty, self.decisions
        );
        if let Some(valid) = self.validity() {
            assert!(
                valid,
                "validity violated (adversary {}, faulty {}, source value {}): decisions {:?}",
                self.adversary, self.faulty, self.config.source_value, self.decisions
            );
        }
    }
}

/// One pooled set of protocol instances, keyed by the configuration
/// shape that produced them.
struct PooledInstances {
    key: PoolKey,
    protocols: Vec<Box<dyn Protocol>>,
}

/// How many keyed instance sets an arena retains. Sweeps interleave at
/// most a handful of `(spec, n, t)` cells per worker; a tiny MRU cache
/// keeps them all warm without hoarding memory.
const INSTANCE_CACHE_CAP: usize = 4;

/// Reusable execution buffers: broadcast tables, the faulty payload
/// matrix, the delivery inbox, per-processor contexts, and the keyed
/// protocol-instance pool.
///
/// One arena serves one execution at a time; [`run`] recycles arenas
/// through a thread-local pool so back-to-back runs (the sweep engine's
/// steady state) reuse the same heap blocks. All buffers are fully
/// overwritten at the start of each use, so no state flows between
/// consecutive runs — `tests/sweep_determinism.rs` and
/// `tests/instance_pool.rs` pin this down.
#[derive(Default)]
pub struct RunArena {
    honest: Vec<Option<Arc<Payload>>>,
    shadow: Vec<Option<Arc<Payload>>>,
    /// `rows[sender][recipient]`, used only for faulty senders.
    rows: Vec<Vec<Arc<Payload>>>,
    inbox: Option<Inbox>,
    /// Per-processor contexts, re-initialized every run (trace buffers
    /// keep their capacity).
    ctxs: Vec<ProcCtx>,
    /// Indices of the run's faulty processors, for the packed-ballot
    /// per-recipient fix-ups.
    faulty_idx: Vec<usize>,
    /// MRU cache of pooled instance sets, most recently used first.
    instances: Vec<PooledInstances>,
}

impl RunArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        RunArena::default()
    }

    /// How many keyed protocol-instance sets are currently warm in this
    /// arena. Long-lived arena owners — the `sg-serve` daemon's worker
    /// threads, which hold one arena for their whole life and reuse it
    /// across requests — use this to report warm-pool state.
    pub fn pooled_instance_sets(&self) -> usize {
        self.instances.len()
    }

    /// Sizes every buffer for an `n`-processor run and clears payloads
    /// retained from any previous run (dropping stale `Arc`s).
    fn reset(&mut self, n: usize) {
        self.honest.clear();
        self.honest.resize(n, None);
        self.shadow.clear();
        self.shadow.resize(n, None);
        self.rows.resize_with(n, Vec::new);
        for row in &mut self.rows {
            row.clear();
            row.resize_with(n, Payload::shared_missing);
        }
        match &mut self.inbox {
            Some(inbox) if inbox.n() == n => {
                for j in 0..n {
                    inbox.set_shared(ProcessId(j), Payload::shared_missing());
                }
                inbox.set_ballots(None);
            }
            slot => *slot = Some(Inbox::empty(n)),
        }
        self.faulty_idx.clear();
    }

    /// Removes and returns the pooled instance set for `key`, if any
    /// (the caller returns it with [`RunArena::put_instances`]).
    fn take_instances(&mut self, key: PoolKey) -> Vec<Box<dyn Protocol>> {
        match self.instances.iter().position(|set| set.key == key) {
            Some(idx) => self.instances.remove(idx).protocols,
            None => Vec::new(),
        }
    }

    /// Stores `protocols` under `key`, most-recently-used first, evicting
    /// the stalest set beyond [`INSTANCE_CACHE_CAP`].
    fn put_instances(&mut self, key: PoolKey, protocols: Vec<Box<dyn Protocol>>) {
        self.instances.insert(0, PooledInstances { key, protocols });
        self.instances.truncate(INSTANCE_CACHE_CAP);
    }

    /// Drops the pooled instance set for `key`, if present, leaving every
    /// other key's warmth intact.
    ///
    /// This is the targeted recovery path for a panic that unwound
    /// through a run: the executing key's instances were already removed
    /// by the take/put cycle (and dropped by the unwind), and every
    /// other buffer is fully overwritten at the start of each run, so
    /// quarantining the one key is enough — the arena itself stays
    /// usable and *warm* for unrelated work.
    pub fn evict_instances(&mut self, key: PoolKey) {
        self.instances.retain(|set| set.key != key);
    }
}

thread_local! {
    /// Pool of arenas recycled across runs on this thread.
    static ARENA_POOL: RefCell<Vec<RunArena>> = const { RefCell::new(Vec::new()) };
}

/// How many idle arenas each thread keeps (runs never nest deeper than
/// protocol-in-protocol compositions, so a handful is plenty).
const ARENA_POOL_CAP: usize = 4;

/// Runs `body` with an arena checked out of this thread's pool.
fn with_pooled_arena<R>(body: impl FnOnce(&mut RunArena) -> R) -> R {
    let mut arena = ARENA_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    let out = body(&mut arena);
    ARENA_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < ARENA_POOL_CAP {
            pool.push(arena);
        }
    });
    out
}

/// Runs one execution of `protocol` (instantiated per processor by `mk`)
/// against `adversary`.
///
/// `mk` is called once per processor with its [`ProcessId`]; it must embed
/// the configuration (including the source's initial value for the source
/// processor). Shadow instances for faulty processors are created with the
/// same factory and driven honestly so the adversary can see what an
/// honest version would send.
///
/// Buffers come from this thread's arena pool; see [`RunArena`]. Protocol
/// instances are built fresh — use [`run_pooled`] with a [`PoolKey`] to
/// recycle instances across runs too.
///
/// # Panics
///
/// Panics if protocol instances disagree on `total_rounds` — every
/// processor must follow the same deterministic schedule.
pub fn run<F>(config: &RunConfig, adversary: &mut dyn Adversary, mk: F) -> Outcome
where
    F: Fn(ProcessId) -> Box<dyn Protocol>,
{
    let mut out = Outcome::buffer();
    with_pooled_arena(|arena| run_with(arena, config, adversary, None, mk, &mut out));
    out
}

/// Like [`run`], but recycling protocol instances across runs through the
/// arena's keyed instance pool: on a pool hit every instance is
/// [`Protocol::reset`] instead of rebuilt, and `mk` is only consulted for
/// instances that miss (or refuse the reset). `key` must uniquely
/// identify the protocol family and configuration shape — see
/// [`PoolKey`]. With [`set_instance_pooling`]`(false)` this degrades to
/// [`run`] exactly.
pub fn run_pooled<F>(
    config: &RunConfig,
    adversary: &mut dyn Adversary,
    key: PoolKey,
    mk: F,
) -> Outcome
where
    F: Fn(ProcessId) -> Box<dyn Protocol>,
{
    let mut out = Outcome::buffer();
    with_pooled_arena(|arena| run_with(arena, config, adversary, Some(key), mk, &mut out));
    out
}

/// Like [`run`], but with caller-supplied buffers — the allocation-free
/// path for callers that loop over many executions and want to hold one
/// arena across all of them. Instances are built fresh every run.
pub fn run_in<F>(
    arena: &mut RunArena,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
    mk: F,
) -> Outcome
where
    F: Fn(ProcessId) -> Box<dyn Protocol>,
{
    let mut out = Outcome::buffer();
    run_with(arena, config, adversary, None, mk, &mut out);
    out
}

/// [`run_in`] streaming the result into a caller-held [`Outcome`] buffer
/// (see [`Outcome::buffer`]): every field is overwritten, and the result
/// vectors reuse the buffer's capacity, so a caller looping over runs
/// performs no per-run result allocations. Bit-identical to [`run_in`].
pub fn run_into<F>(
    arena: &mut RunArena,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
    mk: F,
    out: &mut Outcome,
) where
    F: Fn(ProcessId) -> Box<dyn Protocol>,
{
    run_with(arena, config, adversary, None, mk, out);
}

/// [`run_pooled`] with caller-supplied buffers: arena *and* instance pool
/// live in `arena`, so a caller looping over runs of one spec performs no
/// steady-state allocations for buffers or instances.
pub fn run_pooled_in<F>(
    arena: &mut RunArena,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
    key: PoolKey,
    mk: F,
) -> Outcome
where
    F: Fn(ProcessId) -> Box<dyn Protocol>,
{
    let mut out = Outcome::buffer();
    run_with(arena, config, adversary, Some(key), mk, &mut out);
    out
}

/// [`run_pooled_in`] streaming into a caller-held [`Outcome`] buffer:
/// arena, instance pool *and* result storage all live with the caller, so
/// a long-lived worker looping over runs of one spec performs no
/// steady-state allocations at all — buffers, instances, or results.
/// Bit-identical to [`run_pooled_in`] (`tests/instance_pool.rs` pins the
/// reuse path).
pub fn run_pooled_into<F>(
    arena: &mut RunArena,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
    key: PoolKey,
    mk: F,
    out: &mut Outcome,
) where
    F: Fn(ProcessId) -> Box<dyn Protocol>,
{
    run_with(arena, config, adversary, Some(key), mk, out);
}

/// The engine core behind every `run*` entry point, writing the result
/// into `out` (whose vectors are reused in place).
fn run_with<F>(
    arena: &mut RunArena,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
    key: Option<PoolKey>,
    mk: F,
    out: &mut Outcome,
) where
    F: Fn(ProcessId) -> Box<dyn Protocol>,
{
    let n = config.n;
    arena.reset(n);
    let faulty = adversary.corrupt(n, config.t, config.source);
    assert_eq!(faulty.universe(), n, "fault set universe must match n");
    arena.faulty_idx.extend(faulty.iter().map(ProcessId::index));

    let sigs = config
        .authenticated
        .then(|| Arc::new(Mutex::new(SigRegistry::new())));

    // Protocol instances: recycled through the keyed pool when a key is
    // given and pooling is on, rebuilt by the factory otherwise (or when
    // an instance refuses its reset).
    let key = key.filter(|_| instance_pooling_enabled());
    let mut protocols = match key {
        Some(key) => arena.take_instances(key),
        None => Vec::new(),
    };
    if protocols.len() == n {
        for (i, p) in protocols.iter_mut().enumerate() {
            if !p.reset(ProcessId(i), config) {
                *p = mk(ProcessId(i));
            }
        }
    } else {
        protocols.clear();
        protocols.extend((0..n).map(|i| mk(ProcessId(i))));
    }

    // Per-processor contexts, recycled from the arena (trace buffers
    // keep their capacity across runs).
    arena.ctxs.truncate(n);
    for i in arena.ctxs.len()..n {
        arena.ctxs.push(ProcCtx::new(ProcessId(i)));
    }
    for (i, ctx) in arena.ctxs.iter_mut().enumerate() {
        let p = ProcessId(i);
        ctx.reset(p, config.trace && !faulty.contains(p), sigs.clone());
    }

    let total_rounds = protocols[0].total_rounds();
    for p in &protocols {
        assert_eq!(
            p.total_rounds(),
            total_rounds,
            "all processors must agree on the round schedule"
        );
    }

    // Result storage is reused in place: the caller's buffer keeps its
    // vector capacity across runs, so the steady state allocates nothing
    // for metrics, decisions, or trace.
    out.config = *config;
    out.metrics.reset_for(n);
    out.metrics.per_round.reserve_exact(total_rounds);
    let metrics = &mut out.metrics;
    let bits_per_value = config.domain.bits_per_value();
    // The bit-packed fast path applies to binary-domain runs that fit
    // one mask word; see the module docs.
    let pack = packed_broadcast_enabled() && n <= 64 && config.domain.size() == 2;

    // Early stopping is latched once per run, so a run is entirely
    // status-driven or entirely fixed-length.
    let early = early_stopping_enabled();

    // Per-edge faults (partitions, honest-link omission) are latched the
    // same way: the default `false` keeps delivery on the shared-inbox
    // fast path with no per-round cost.
    let edge_faults = adversary.has_edge_faults();

    let RunArena {
        honest,
        shadow,
        rows,
        inbox,
        ctxs,
        faulty_idx,
        ..
    } = &mut *arena;
    let inbox = inbox.as_mut().expect("arena reset installed an inbox");

    // The dynamic run loop: rounds are issued one at a time, the schedule
    // decided by the processors' `next_action` votes after each round —
    // `total_rounds` is a hard ceiling, never exceeded (the entry guard
    // also makes a zero-round schedule execute zero rounds, like the old
    // `for` loop). Static protocols (the default `next_action`) replay
    // `1..=total_rounds` exactly.
    let mut round = 0;
    let rounds_used = loop {
        if round >= total_rounds {
            break round;
        }
        round += 1;
        for ctx in ctxs.iter_mut() {
            ctx.round = round;
        }

        // 1. Honest broadcasts and shadow broadcasts (shared, not cloned
        // per recipient: EIG payloads are large). Both tables are fully
        // overwritten every round, so arena reuse leaks nothing.
        for i in 0..n {
            let p = ProcessId(i);
            let out = protocols[i]
                .outgoing(&mut ctxs[i])
                .map(Payload::into_shared);
            if faulty.contains(p) {
                shadow[i] = out;
                honest[i] = None;
            } else {
                honest[i] = out;
                shadow[i] = None;
            }
        }

        // 2. Traffic accounting for honest senders (broadcast = n−1 messages).
        let mut stats = RoundStats {
            round,
            ..RoundStats::default()
        };
        for payload in honest.iter().flatten() {
            let values = payload.num_values() as u64;
            let bits = payload.bits(bits_per_value);
            let fanout = (n - 1) as u64;
            stats.honest_messages += fanout;
            stats.honest_values += values * fanout;
            stats.honest_bits += bits * fanout;
            stats.max_message_values = stats.max_message_values.max(values);
            stats.max_message_bits = stats.max_message_bits.max(bits);
        }
        metrics.per_round.push(stats);

        // 3. Adversary chooses faulty payloads, seeing all honest traffic.
        let view = AdversaryView {
            round,
            total_rounds,
            n,
            t: config.t,
            source: config.source,
            source_value: config.source_value,
            domain: config.domain,
            faulty: &faulty,
            honest_broadcast: &honest[..],
            shadow_broadcast: &shadow[..],
            sigs: sigs.clone(),
        };
        // Faulty payload matrix, `rows[sender][recipient]`: every slot of
        // each faulty row is overwritten every round (the self slot with
        // the interned missing payload), so row reuse leaks nothing.
        // Honest rows are never read.
        for f in faulty.iter() {
            for r in 0..n {
                rows[f.index()][r] = if r == f.index() {
                    Payload::shared_missing()
                } else {
                    adversary.payload(f, ProcessId(r), &view).into_shared()
                };
            }
        }

        // Base ballot masks over the honest table, shared by every
        // recipient; faulty senders differ per recipient and are fixed
        // up below.
        let mut base = PackedBallots::default();
        if pack && !edge_faults {
            for (j, payload) in honest.iter().enumerate() {
                if let Some(v) = payload.as_ref().and_then(|p| p.value_at(0)) {
                    if v.raw() <= 1 {
                        base.record(ProcessId(j), v);
                    }
                }
            }
        }

        // 4. Deliver complete inboxes to every processor (incl. shadows),
        // reusing one inbox. Honest slots are identical for every
        // recipient, so the inbox is filled completely only for the
        // first recipient; each later recipient updates just the slots
        // that differ — the previous recipient's self slot, its own self
        // slot, and the per-recipient faulty rows.
        for i in 0..n {
            if edge_faults {
                // Per-edge faults make honest slots recipient-dependent,
                // so every inbox is filled completely and the ballot
                // masks are recomputed from its actual contents (no
                // shared base, no delta updates).
                let mut ballots = PackedBallots::default();
                for j in 0..n {
                    let q = ProcessId(j);
                    let payload = if i == j {
                        Payload::shared_missing()
                    } else if faulty.contains(q) {
                        rows[j][i].clone()
                    } else if adversary.edge_cut(q, ProcessId(i), &view) {
                        Payload::shared_missing()
                    } else {
                        honest[j].clone().unwrap_or_else(Payload::shared_missing)
                    };
                    if pack && j != i {
                        if let Some(v) = payload.value_at(0) {
                            if v.raw() <= 1 {
                                ballots.record(q, v);
                            }
                        }
                    }
                    inbox.set_shared(q, payload);
                }
                if pack {
                    inbox.set_ballots(Some(ballots));
                }
                protocols[i].deliver(inbox, &mut ctxs[i]);
                continue;
            }
            if i == 0 {
                for j in 0..n {
                    let q = ProcessId(j);
                    let payload = if i == j {
                        Payload::shared_missing()
                    } else if faulty.contains(q) {
                        rows[j][i].clone()
                    } else {
                        honest[j].clone().unwrap_or_else(Payload::shared_missing)
                    };
                    inbox.set_shared(q, payload);
                }
            } else {
                let prev = ProcessId(i - 1);
                if !faulty.contains(prev) {
                    inbox.set_shared(
                        prev,
                        honest[i - 1]
                            .clone()
                            .unwrap_or_else(Payload::shared_missing),
                    );
                }
                inbox.set_shared(ProcessId(i), Payload::shared_missing());
                for &j in faulty_idx.iter() {
                    if j != i {
                        inbox.set_shared(ProcessId(j), rows[j][i].clone());
                    }
                }
            }
            if pack {
                let mut ballots = base;
                for &j in faulty_idx.iter() {
                    if i != j {
                        if let Some(v) = rows[j][i].value_at(0) {
                            if v.raw() <= 1 {
                                ballots.record(ProcessId(j), v);
                            }
                        }
                    }
                }
                ballots.clear(ProcessId(i));
                inbox.set_ballots(Some(ballots));
            }
            protocols[i].deliver(inbox, &mut ctxs[i]);
        }

        // 5. Peak-space sampling (honest processors only).
        for i in 0..n {
            if !faulty.contains(ProcessId(i)) {
                metrics.peak_tree_nodes = metrics.peak_tree_nodes.max(protocols[i].space_nodes());
            }
        }

        // 6. Early stopping: terminate once every *correct* processor
        // reports its decision final (faulty processors never gate
        // termination). Reaching the schedule ceiling is not counted
        // as early.
        if early
            && round < total_rounds
            && (0..n).all(|i| {
                faulty.contains(ProcessId(i))
                    || protocols[i].round_status(&ctxs[i]) == RoundStatus::ReadyToDecide
            })
        {
            break round;
        }

        // 7. Dynamic gear dispatch: poll every correct processor's
        // next_action. The run ends when all of them report their
        // schedule finished (or at the `total_rounds` ceiling); a gear
        // shift commits only on a unanimous correct-processor proposal
        // and is then applied to every instance — honest shadows of
        // faulty processors included — so the schedule stays common.
        let mut any_correct = false;
        let mut all_finished = true;
        let mut all_shift = true;
        for i in 0..n {
            if faulty.contains(ProcessId(i)) {
                continue;
            }
            any_correct = true;
            match protocols[i].next_action(&ctxs[i]) {
                GearAction::Round => {
                    all_finished = false;
                    all_shift = false;
                }
                GearAction::ShiftGear => all_finished = false,
                GearAction::Finished => all_shift = false,
            }
        }
        if any_correct && all_finished {
            break round;
        }
        if any_correct && all_shift {
            for i in 0..n {
                protocols[i].shift_gear(&mut ctxs[i]);
            }
        }
    };
    let early_stopped = rounds_used < total_rounds;

    // Decisions (into the reused buffer).
    for ctx in ctxs.iter_mut() {
        ctx.round = 0;
    }
    out.decisions.clear();
    out.decisions.resize(n, None);
    for i in 0..n {
        if !faulty.contains(ProcessId(i)) {
            out.decisions[i] = Some(protocols[i].decide(&mut ctxs[i]));
        }
    }

    // Collect per-processor accounting (trace sized in one reservation,
    // reusing the buffer's capacity).
    out.trace.clear();
    out.trace.reserve(ctxs.iter().map(ProcCtx::trace_len).sum());
    for (i, ctx) in ctxs.iter_mut().enumerate() {
        metrics.local_ops[i] = ctx.ops();
        ctx.drain_trace_into(&mut out.trace);
    }

    // Return the instances to the pool for the next run of this spec.
    if let Some(key) = key {
        arena.put_instances(key, protocols);
    }

    out.faulty = faulty;
    out.rounds_used = rounds_used;
    out.scheduled_rounds = total_rounds;
    out.early_stopped = early_stopped;
    out.adversary = adversary.name_shared();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NoFaults;

    /// A toy 1-round protocol: the source broadcasts its value; everyone
    /// else decides the received value (no fault tolerance).
    struct Toy {
        me: ProcessId,
        source: ProcessId,
        value: Value,
        got: Value,
    }

    impl Protocol for Toy {
        fn total_rounds(&self) -> usize {
            1
        }

        fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
            ctx.charge(1);
            (self.me == self.source).then(|| Payload::values([self.value]))
        }

        fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
            ctx.charge(1);
            if self.me != self.source {
                self.got = inbox.from(self.source).value_at(0).unwrap_or_default();
            } else {
                self.got = self.value;
            }
        }

        fn decide(&mut self, _ctx: &mut ProcCtx) -> Value {
            self.got
        }
    }

    fn toy_factory(config: &RunConfig) -> impl Fn(ProcessId) -> Box<dyn Protocol> + '_ {
        move |me| {
            Box::new(Toy {
                me,
                source: config.source,
                value: config.source_value,
                got: Value::DEFAULT,
            })
        }
    }

    #[test]
    fn fault_free_toy_run_agrees() {
        let config = RunConfig::new(4, 0).with_source_value(Value(1));
        let outcome = run(&config, &mut NoFaults, toy_factory(&config));
        outcome.assert_correct();
        assert_eq!(outcome.decision(), Some(Value(1)));
        assert_eq!(outcome.rounds_used, 1);
    }

    #[test]
    fn traffic_accounting_counts_broadcast_fanout() {
        let config = RunConfig::new(5, 0);
        let outcome = run(&config, &mut NoFaults, toy_factory(&config));
        // Only the source sends: 1 value to each of 4 peers, 1 bit each.
        let r1 = &outcome.metrics.per_round[0];
        assert_eq!(r1.honest_messages, 4);
        assert_eq!(r1.honest_values, 4);
        assert_eq!(r1.honest_bits, 4);
        assert_eq!(r1.max_message_values, 1);
    }

    #[test]
    fn local_ops_recorded_per_processor() {
        let config = RunConfig::new(3, 0);
        let outcome = run(&config, &mut NoFaults, toy_factory(&config));
        // Each processor charged 1 in outgoing + 1 in deliver.
        assert_eq!(outcome.metrics.local_ops, vec![2, 2, 2]);
    }

    /// Serializes the early-stopping tests: one of them flips the
    /// process-global toggle, so running them on parallel test threads
    /// would race the flag mid-run (the same convention as
    /// `tests/instance_pool.rs`).
    static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A silent protocol that runs `rounds` rounds and reports ready from
    /// the end of round `ready_after` on.
    struct Lazy {
        rounds: usize,
        ready_after: usize,
    }

    impl Protocol for Lazy {
        fn total_rounds(&self) -> usize {
            self.rounds
        }

        fn outgoing(&mut self, _ctx: &mut ProcCtx) -> Option<Payload> {
            None
        }

        fn deliver(&mut self, _inbox: &Inbox, _ctx: &mut ProcCtx) {}

        fn decide(&mut self, _ctx: &mut ProcCtx) -> Value {
            Value::DEFAULT
        }

        fn round_status(&self, ctx: &ProcCtx) -> RoundStatus {
            if ctx.round >= self.ready_after {
                RoundStatus::ReadyToDecide
            } else {
                RoundStatus::Continue
            }
        }
    }

    #[test]
    fn engine_stops_when_all_correct_processors_are_ready() {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let config = RunConfig::new(3, 0);
        let outcome = run(&config, &mut NoFaults, |_| {
            Box::new(Lazy {
                rounds: 7,
                ready_after: 3,
            })
        });
        assert_eq!(outcome.rounds_used, 3);
        assert_eq!(outcome.scheduled_rounds, 7);
        assert!(outcome.early_stopped);
        assert_eq!(outcome.rounds_saved(), 4);
        assert_eq!(outcome.metrics.rounds(), 3);
    }

    #[test]
    fn reaching_the_last_round_is_not_early() {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let config = RunConfig::new(3, 0);
        let outcome = run(&config, &mut NoFaults, |_| {
            Box::new(Lazy {
                rounds: 4,
                ready_after: 4,
            })
        });
        assert_eq!(outcome.rounds_used, 4);
        assert!(!outcome.early_stopped);
        assert_eq!(outcome.rounds_saved(), 0);
    }

    #[test]
    fn escape_hatch_restores_fixed_length_runs() {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let config = RunConfig::new(3, 0);
        set_early_stopping(false);
        let outcome = run(&config, &mut NoFaults, |_| {
            Box::new(Lazy {
                rounds: 7,
                ready_after: 2,
            })
        });
        set_early_stopping(true);
        assert_eq!(outcome.rounds_used, 7);
        assert!(!outcome.early_stopped);
        assert_eq!(outcome.metrics.rounds(), 7);
    }

    /// A two-segment dynamic toy: a "slow" segment of `slow_rounds`
    /// silent rounds, then — once `propose_at` is reached — a proposal to
    /// shift into a 2-round "fast" tail, after which it finishes.
    struct Gearish {
        slow_rounds: usize,
        propose_at: usize,
        /// Round at which the shift committed (0 = still in the slow
        /// segment).
        shifted_at: usize,
    }

    impl Gearish {
        fn end(&self) -> usize {
            if self.shifted_at > 0 {
                self.shifted_at + 2
            } else {
                self.slow_rounds
            }
        }
    }

    impl Protocol for Gearish {
        fn total_rounds(&self) -> usize {
            self.slow_rounds
        }

        fn outgoing(&mut self, _ctx: &mut ProcCtx) -> Option<Payload> {
            None
        }

        fn deliver(&mut self, _inbox: &Inbox, _ctx: &mut ProcCtx) {}

        fn decide(&mut self, _ctx: &mut ProcCtx) -> Value {
            Value::DEFAULT
        }

        fn next_action(&self, ctx: &ProcCtx) -> GearAction {
            if ctx.round >= self.end() {
                GearAction::Finished
            } else if self.shifted_at == 0 && ctx.round >= self.propose_at {
                GearAction::ShiftGear
            } else {
                GearAction::Round
            }
        }

        fn shift_gear(&mut self, ctx: &mut ProcCtx) {
            self.shifted_at = ctx.round;
        }
    }

    #[test]
    fn unanimous_shift_proposal_truncates_the_schedule() {
        let config = RunConfig::new(3, 0);
        let outcome = run(&config, &mut NoFaults, |_| {
            Box::new(Gearish {
                slow_rounds: 12,
                propose_at: 3,
                shifted_at: 0,
            })
        });
        // Shift committed after round 3; the fast tail runs rounds 4-5.
        assert_eq!(outcome.rounds_used, 5);
        assert_eq!(outcome.scheduled_rounds, 12);
        assert!(outcome.early_stopped);
        assert_eq!(outcome.metrics.rounds(), 5);
    }

    #[test]
    fn divergent_proposals_do_not_commit_a_shift() {
        let config = RunConfig::new(3, 0);
        let propose = std::cell::Cell::new(0usize);
        let outcome = run(&config, &mut NoFaults, |_| {
            // One processor proposes at round 3, the others at round 5:
            // no unanimous round exists before 5, so the shift lands
            // there and the run ends at round 7.
            propose.set(propose.get() + 1);
            Box::new(Gearish {
                slow_rounds: 12,
                propose_at: if propose.get() == 1 { 3 } else { 5 },
                shifted_at: 0,
            })
        });
        assert_eq!(outcome.rounds_used, 7);
        assert!(outcome.early_stopped);
    }

    #[test]
    fn zero_round_schedules_execute_no_rounds() {
        // The old `for round in 1..=0` ran nothing; the dynamic loop's
        // entry guard must preserve that for external implementations.
        let config = RunConfig::new(3, 0);
        let outcome = run(&config, &mut NoFaults, |_| {
            Box::new(Lazy {
                rounds: 0,
                ready_after: 0,
            })
        });
        assert_eq!(outcome.rounds_used, 0);
        assert_eq!(outcome.scheduled_rounds, 0);
        assert!(!outcome.early_stopped);
        assert_eq!(outcome.metrics.rounds(), 0);
        assert_eq!(outcome.decisions.len(), 3);
    }

    #[test]
    fn default_next_action_replays_the_static_schedule() {
        let config = RunConfig::new(3, 0);
        let outcome = run(&config, &mut NoFaults, |_| {
            Box::new(Lazy {
                rounds: 4,
                ready_after: usize::MAX,
            })
        });
        assert_eq!(outcome.rounds_used, 4);
        assert!(!outcome.early_stopped);
    }

    #[test]
    fn outcome_buffer_reuse_is_bit_identical() {
        let config = RunConfig::new(4, 0).with_source_value(Value(1));
        let fresh = run(&config, &mut NoFaults, toy_factory(&config));
        let mut arena = RunArena::new();
        let mut buf = Outcome::buffer();
        // Two runs through the same buffer: the second overwrites every
        // field of the first.
        run_into(
            &mut arena,
            &config,
            &mut NoFaults,
            toy_factory(&config),
            &mut buf,
        );
        run_into(
            &mut arena,
            &config,
            &mut NoFaults,
            toy_factory(&config),
            &mut buf,
        );
        assert_eq!(buf.decisions, fresh.decisions);
        assert_eq!(buf.faulty, fresh.faulty);
        assert_eq!(buf.metrics, fresh.metrics);
        assert_eq!(buf.rounds_used, fresh.rounds_used);
        assert_eq!(buf.scheduled_rounds, fresh.scheduled_rounds);
        assert_eq!(buf.trace, fresh.trace);
    }

    #[test]
    fn agreement_detects_divergence() {
        let config = RunConfig::new(3, 0);
        let mut outcome = run(&config, &mut NoFaults, toy_factory(&config));
        outcome.decisions[2] = Some(Value(0));
        assert!(!outcome.agreement());
        assert_eq!(outcome.decision(), None);
    }
}
