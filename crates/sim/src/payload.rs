//! Message payloads.
//!
//! Because every correct processor's information-gathering tree has the
//! same shape in any given round, a round's broadcast is fully described by
//! a vector of values in canonical tree order. A Byzantine sender may send
//! any vector (of any length), a signed-relay bundle for the authenticated
//! baseline, or nothing at all.

use crate::sig::SignedRelay;
use crate::value::Value;

/// A message payload as delivered by the network.
///
/// Honest processors in the paper's protocols broadcast value vectors in
/// canonical order; receivers interpret them positionally. Anything a
/// receiver cannot interpret (wrong length, illegitimate values, absent
/// message) is replaced by default values per §3 of the paper — receivers
/// apply that policy, not the network.
///
/// # Examples
///
/// ```
/// use sg_sim::{Payload, Value};
///
/// let p = Payload::values([Value(1), Value(0)]);
/// assert_eq!(p.num_values(), 2);
/// assert_eq!(p.value_at(0), Some(Value(1)));
/// assert_eq!(p.value_at(5), None);
/// assert_eq!(Payload::Missing.value_at(0), None);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum Payload {
    /// A vector of values in canonical tree order.
    Values(Vec<Value>),
    /// Signed relay bundle, used only by the authenticated
    /// Dolev–Strong baseline.
    Signed(Vec<SignedRelay>),
    /// No message (or one so garbled the receiver discards it wholesale).
    Missing,
}

impl Payload {
    /// Convenience constructor for a value-vector payload.
    pub fn values<I: IntoIterator<Item = Value>>(vals: I) -> Self {
        Payload::Values(vals.into_iter().collect())
    }

    /// A payload of `len` default values — what a masked faulty processor
    /// is deemed to have sent under the Fault Masking Rule.
    pub fn defaults(len: usize) -> Self {
        Payload::Values(vec![Value::DEFAULT; len])
    }

    /// Number of values carried (0 for [`Payload::Missing`] and signed bundles).
    pub fn num_values(&self) -> usize {
        match self {
            Payload::Values(v) => v.len(),
            Payload::Signed(_) | Payload::Missing => 0,
        }
    }

    /// The value at position `idx`, if this payload carries one there.
    ///
    /// Receivers treat `None` as "inappropriate message" and substitute the
    /// default value, per §3.
    pub fn value_at(&self, idx: usize) -> Option<Value> {
        match self {
            Payload::Values(v) => v.get(idx).copied(),
            Payload::Signed(_) | Payload::Missing => None,
        }
    }

    /// Cost of this payload in bits given `bits_per_value` for the domain.
    ///
    /// Signed relays are costed by the authenticated baseline itself (a
    /// relay carries a value plus a signature chain); see
    /// [`SignedRelay::bits`].
    pub fn bits(&self, bits_per_value: u64) -> u64 {
        match self {
            Payload::Values(v) => v.len() as u64 * bits_per_value,
            Payload::Signed(relays) => relays.iter().map(|r| r.bits(bits_per_value)).sum(),
            Payload::Missing => 0,
        }
    }

    /// Whether this payload is [`Payload::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, Payload::Missing)
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::Missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_zero() {
        let p = Payload::defaults(3);
        assert_eq!(p, Payload::values([Value(0), Value(0), Value(0)]));
    }

    #[test]
    fn bits_scale_with_length_and_width() {
        let p = Payload::defaults(10);
        assert_eq!(p.bits(1), 10);
        assert_eq!(p.bits(3), 30);
        assert_eq!(Payload::Missing.bits(8), 0);
    }

    #[test]
    fn value_at_out_of_range_is_none() {
        let p = Payload::values([Value(1)]);
        assert_eq!(p.value_at(0), Some(Value(1)));
        assert_eq!(p.value_at(1), None);
    }
}
