//! Message payloads.
//!
//! Because every correct processor's information-gathering tree has the
//! same shape in any given round, a round's broadcast is fully described by
//! a vector of values in canonical tree order. A Byzantine sender may send
//! any vector (of any length), a signed-relay bundle for the authenticated
//! baseline, or nothing at all.

use std::sync::{Arc, OnceLock};

use crate::sig::SignedRelay;
use crate::value::Value;

/// A message payload as delivered by the network.
///
/// Honest processors in the paper's protocols broadcast value vectors in
/// canonical order; receivers interpret them positionally. Anything a
/// receiver cannot interpret (wrong length, illegitimate values, absent
/// message) is replaced by default values per §3 of the paper — receivers
/// apply that policy, not the network.
///
/// # Examples
///
/// ```
/// use sg_sim::{Payload, Value};
///
/// let p = Payload::values([Value(1), Value(0)]);
/// assert_eq!(p.num_values(), 2);
/// assert_eq!(p.value_at(0), Some(Value(1)));
/// assert_eq!(p.value_at(5), None);
/// assert_eq!(Payload::Missing.value_at(0), None);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize, Default)]
pub enum Payload {
    /// A vector of values in canonical tree order.
    Values(Vec<Value>),
    /// Signed relay bundle, used only by the authenticated
    /// Dolev–Strong baseline.
    Signed(Vec<SignedRelay>),
    /// No message (or one so garbled the receiver discards it wholesale).
    #[default]
    Missing,
}

impl Payload {
    /// Convenience constructor for a value-vector payload.
    pub fn values<I: IntoIterator<Item = Value>>(vals: I) -> Self {
        Payload::Values(vals.into_iter().collect())
    }

    /// A payload of `len` default values — what a masked faulty processor
    /// is deemed to have sent under the Fault Masking Rule.
    pub fn defaults(len: usize) -> Self {
        Payload::Values(vec![Value::DEFAULT; len])
    }

    /// Number of values carried (0 for [`Payload::Missing`] and signed bundles).
    pub fn num_values(&self) -> usize {
        match self {
            Payload::Values(v) => v.len(),
            Payload::Signed(_) | Payload::Missing => 0,
        }
    }

    /// The value at position `idx`, if this payload carries one there.
    ///
    /// Receivers treat `None` as "inappropriate message" and substitute the
    /// default value, per §3.
    pub fn value_at(&self, idx: usize) -> Option<Value> {
        match self {
            Payload::Values(v) => v.get(idx).copied(),
            Payload::Signed(_) | Payload::Missing => None,
        }
    }

    /// Cost of this payload in bits given `bits_per_value` for the domain.
    ///
    /// Signed relays are costed by the authenticated baseline itself (a
    /// relay carries a value plus a signature chain); see
    /// [`SignedRelay::bits`].
    pub fn bits(&self, bits_per_value: u64) -> u64 {
        match self {
            Payload::Values(v) => v.len() as u64 * bits_per_value,
            Payload::Signed(relays) => relays.iter().map(|r| r.bits(bits_per_value)).sum(),
            Payload::Missing => 0,
        }
    }

    /// Whether this payload is [`Payload::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, Payload::Missing)
    }

    /// The shared [`Payload::Missing`] singleton.
    ///
    /// Fanning a missing payload out to `n−1` recipients clones this
    /// `Arc` instead of allocating — part of the engine's zero-allocation
    /// round loop.
    pub fn shared_missing() -> Arc<Payload> {
        interned()[0].clone()
    }

    /// Wraps `self` in an `Arc`, with a small-value fast path.
    ///
    /// The binary-domain protocols (Phase King, the king phases of the
    /// shifted families, Algorithm C's proposal rounds) broadcast mostly
    /// single-value payloads over `{0, 1}`; those and [`Payload::Missing`]
    /// are interned, so sharing them allocates nothing. Everything else
    /// takes one `Arc` allocation, exactly as before.
    pub fn into_shared(self) -> Arc<Payload> {
        match &self {
            Payload::Missing => interned()[0].clone(),
            Payload::Values(v) if v.len() == 1 && v[0].raw() <= 1 => {
                interned()[1 + v[0].raw() as usize].clone()
            }
            _ => Arc::new(self),
        }
    }
}

/// Interned payloads: `[Missing, Values([0]), Values([1])]`.
fn interned() -> &'static [Arc<Payload>; 3] {
    static INTERNED: OnceLock<[Arc<Payload>; 3]> = OnceLock::new();
    INTERNED.get_or_init(|| {
        [
            Arc::new(Payload::Missing),
            Arc::new(Payload::Values(vec![Value(0)])),
            Arc::new(Payload::Values(vec![Value(1)])),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_zero() {
        let p = Payload::defaults(3);
        assert_eq!(p, Payload::values([Value(0), Value(0), Value(0)]));
    }

    #[test]
    fn bits_scale_with_length_and_width() {
        let p = Payload::defaults(10);
        assert_eq!(p.bits(1), 10);
        assert_eq!(p.bits(3), 30);
        assert_eq!(Payload::Missing.bits(8), 0);
    }

    #[test]
    fn value_at_out_of_range_is_none() {
        let p = Payload::values([Value(1)]);
        assert_eq!(p.value_at(0), Some(Value(1)));
        assert_eq!(p.value_at(1), None);
    }

    #[test]
    fn interned_payloads_share_storage_and_compare_equal() {
        let a = Payload::values([Value(1)]).into_shared();
        let b = Payload::values([Value(1)]).into_shared();
        assert!(Arc::ptr_eq(&a, &b), "binary single values are interned");
        assert!(Arc::ptr_eq(
            &Payload::shared_missing(),
            &Payload::Missing.into_shared()
        ));
        // Everything else allocates fresh but compares structurally.
        let c = Payload::values([Value(2)]).into_shared();
        let d = Payload::values([Value(2)]).into_shared();
        assert!(!Arc::ptr_eq(&c, &d));
        assert_eq!(*c, *d);
        let long = Payload::values([Value(1), Value(1)]).into_shared();
        assert_eq!(long.num_values(), 2);
    }
}
