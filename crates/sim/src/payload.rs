//! Message payloads.
//!
//! Because every correct processor's information-gathering tree has the
//! same shape in any given round, a round's broadcast is fully described by
//! a vector of values in canonical tree order. A Byzantine sender may send
//! any vector (of any length), a signed-relay bundle for the authenticated
//! baseline, or nothing at all.

use std::sync::{Arc, OnceLock};

use crate::sig::SignedRelay;
use crate::value::Value;

/// Words kept inline by [`SmallWords`] before spilling to the heap:
/// `4 × 64 = 256` bit slots, which covers every king-family payload and
/// the first few levels of the no-repetition tree at realistic `n`.
const INLINE_WORDS: usize = 4;

/// Bit storage for [`Payload::Bits`]: a short inline word array with a
/// heap spill for vectors longer than 256 slots.
///
/// Building a payload of at most [`SmallWords`]' inline capacity performs
/// **no heap allocation** — the property the engine's zero-allocation
/// round loop relies on for binary-domain broadcasts.
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum SmallWords {
    /// Up to 256 bits stored inline.
    Inline([u64; INLINE_WORDS]),
    /// Longer bit vectors, one `u64` per 64 slots.
    Heap(Vec<u64>),
}

impl SmallWords {
    /// The backing words.
    fn words(&self) -> &[u64] {
        match self {
            SmallWords::Inline(w) => w,
            SmallWords::Heap(w) => w,
        }
    }

    /// Sets bit `idx`.
    fn set(&mut self, idx: usize) {
        let words = match self {
            SmallWords::Inline(w) => &mut w[..],
            SmallWords::Heap(w) => &mut w[..],
        };
        words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Reads bit `idx` (callers bound-check against the payload length).
    fn get(&self, idx: usize) -> bool {
        self.words()[idx / 64] >> (idx % 64) & 1 == 1
    }
}

/// A message payload as delivered by the network.
///
/// Honest processors in the paper's protocols broadcast value vectors in
/// canonical order; receivers interpret them positionally. Anything a
/// receiver cannot interpret (wrong length, illegitimate values, absent
/// message) is replaced by default values per §3 of the paper — receivers
/// apply that policy, not the network.
///
/// # Examples
///
/// ```
/// use sg_sim::{Payload, Value};
///
/// let p = Payload::values([Value(1), Value(0)]);
/// assert_eq!(p.num_values(), 2);
/// assert_eq!(p.value_at(0), Some(Value(1)));
/// assert_eq!(p.value_at(5), None);
/// assert_eq!(Payload::Missing.value_at(0), None);
/// ```
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize, Default)]
pub enum Payload {
    /// A vector of values in canonical tree order.
    Values(Vec<Value>),
    /// A bit-packed vector of *binary* values in canonical tree order:
    /// slot `i` carries `Value(1)` iff bit `i` is set. Semantically
    /// identical to the equivalent [`Payload::Values`] under every
    /// accessor, but stores one bit per tree slot and — below
    /// [`SmallWords`]' inline capacity — allocates nothing to build.
    ///
    /// [`Payload::into_shared`] interns single-bit payloads to the same
    /// shared `Arc`s as their `Values` twins, so bit-packed and
    /// vector-built broadcasts are indistinguishable on the wire.
    Bits {
        /// The packed bits, one per slot.
        words: SmallWords,
        /// Number of slots carried.
        len: u32,
    },
    /// Signed relay bundle, used only by the authenticated
    /// Dolev–Strong baseline.
    Signed(Vec<SignedRelay>),
    /// No message (or one so garbled the receiver discards it wholesale).
    #[default]
    Missing,
}

/// The out-of-domain sentinel `u16::MAX`, used on the wire by the king
/// protocols to encode a `⊥` proposal. Interned alongside the binary
/// single values so a `⊥` broadcast shares storage too.
const BOT_SENTINEL: u16 = u16::MAX;

impl Payload {
    /// Convenience constructor for a value-vector payload.
    pub fn values<I: IntoIterator<Item = Value>>(vals: I) -> Self {
        Payload::Values(vals.into_iter().collect())
    }

    /// A single-value payload without the one-element `Vec` for binary
    /// values, which pack into an inline [`Payload::Bits`]; anything
    /// else (the `⊥` sentinel, wide-domain values) falls back to a
    /// one-element [`Payload::Values`], whose transient `Vec` lives only
    /// until [`Payload::into_shared`] interns it. Net effect: binary
    /// broadcasts allocate nothing; `⊥` broadcasts cost one short-lived
    /// allocation but still share the interned `Arc` on the wire.
    pub fn single(v: Value) -> Self {
        if v.raw() <= 1 {
            let mut words = SmallWords::Inline([0; INLINE_WORDS]);
            if v.raw() == 1 {
                words.set(0);
            }
            Payload::Bits { words, len: 1 }
        } else {
            Payload::Values(vec![v])
        }
    }

    /// Packs a vector of binary values into a [`Payload::Bits`]: inline
    /// (allocation-free) up to 256 slots, heap words beyond.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `{0, 1}` — bit packing is the
    /// binary-domain fast path only.
    pub fn packed<I: IntoIterator<Item = Value>>(vals: I) -> Self {
        let mut inline = [0u64; INLINE_WORDS];
        let mut heap: Vec<u64> = Vec::new();
        let mut len = 0usize;
        for v in vals {
            assert!(v.raw() <= 1, "bit packing holds binary values only");
            if heap.is_empty() && len == INLINE_WORDS * 64 {
                heap.extend_from_slice(&inline);
            }
            if heap.is_empty() {
                inline[len / 64] |= u64::from(v.raw()) << (len % 64);
            } else {
                if len.is_multiple_of(64) {
                    heap.push(0);
                }
                let last = heap.len() - 1;
                heap[last] |= u64::from(v.raw()) << (len % 64);
            }
            len += 1;
        }
        let words = if heap.is_empty() {
            SmallWords::Inline(inline)
        } else {
            SmallWords::Heap(heap)
        };
        Payload::Bits {
            words,
            len: len as u32,
        }
    }

    /// A payload of `len` default values — what a masked faulty processor
    /// is deemed to have sent under the Fault Masking Rule.
    pub fn defaults(len: usize) -> Self {
        Payload::Values(vec![Value::DEFAULT; len])
    }

    /// Number of values carried (0 for [`Payload::Missing`] and signed bundles).
    pub fn num_values(&self) -> usize {
        match self {
            Payload::Values(v) => v.len(),
            Payload::Bits { len, .. } => *len as usize,
            Payload::Signed(_) | Payload::Missing => 0,
        }
    }

    /// The value at position `idx`, if this payload carries one there.
    ///
    /// Receivers treat `None` as "inappropriate message" and substitute the
    /// default value, per §3.
    pub fn value_at(&self, idx: usize) -> Option<Value> {
        match self {
            Payload::Values(v) => v.get(idx).copied(),
            Payload::Bits { words, len } => {
                (idx < *len as usize).then(|| Value(u16::from(words.get(idx))))
            }
            Payload::Signed(_) | Payload::Missing => None,
        }
    }

    /// Cost of this payload in bits given `bits_per_value` for the domain.
    ///
    /// Signed relays are costed by the authenticated baseline itself (a
    /// relay carries a value plus a signature chain); see
    /// [`SignedRelay::bits`].
    pub fn bits(&self, bits_per_value: u64) -> u64 {
        match self {
            Payload::Values(v) => v.len() as u64 * bits_per_value,
            Payload::Bits { len, .. } => u64::from(*len) * bits_per_value,
            Payload::Signed(relays) => relays.iter().map(|r| r.bits(bits_per_value)).sum(),
            Payload::Missing => 0,
        }
    }

    /// Whether this payload is [`Payload::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, Payload::Missing)
    }

    /// The shared [`Payload::Missing`] singleton.
    ///
    /// Fanning a missing payload out to `n−1` recipients clones this
    /// `Arc` instead of allocating — part of the engine's zero-allocation
    /// round loop.
    pub fn shared_missing() -> Arc<Payload> {
        interned()[0].clone()
    }

    /// Wraps `self` in an `Arc`, with a small-value fast path.
    ///
    /// The binary-domain protocols (Phase King, the king phases of the
    /// shifted families, Algorithm C's proposal rounds) broadcast mostly
    /// single-value payloads over `{0, 1}` plus the `⊥` sentinel; those
    /// and [`Payload::Missing`] are interned, so sharing them allocates
    /// nothing — single-bit [`Payload::Bits`] payloads land on the *same*
    /// interned `Values` `Arc`s, keeping the wire representation
    /// identical however the sender built the payload. Everything else
    /// takes one `Arc` allocation, exactly as before.
    pub fn into_shared(self) -> Arc<Payload> {
        match &self {
            Payload::Missing => interned()[0].clone(),
            Payload::Values(v) if v.len() == 1 && v[0].raw() <= 1 => {
                interned()[1 + v[0].raw() as usize].clone()
            }
            Payload::Values(v) if v.len() == 1 && v[0].raw() == BOT_SENTINEL => {
                interned()[3].clone()
            }
            Payload::Bits { words, len: 1 } => interned()[1 + usize::from(words.get(0))].clone(),
            _ => Arc::new(self),
        }
    }
}

/// Payload equality is *semantic*: a [`Payload::Bits`] equals the
/// [`Payload::Values`] carrying the same value sequence (receivers cannot
/// tell them apart through any accessor), and bit vectors compare by
/// content whether stored inline or on the heap.
impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Payload::Values(a), Payload::Values(b)) => a == b,
            (Payload::Signed(a), Payload::Signed(b)) => a == b,
            (Payload::Missing, Payload::Missing) => true,
            (a @ (Payload::Values(_) | Payload::Bits { .. }), b) => {
                matches!(b, Payload::Values(_) | Payload::Bits { .. })
                    && a.num_values() == b.num_values()
                    && (0..a.num_values()).all(|i| a.value_at(i) == b.value_at(i))
            }
            _ => false,
        }
    }
}

impl Eq for Payload {}

/// Interned payloads: `[Missing, Values([0]), Values([1]), Values([⊥])]`.
fn interned() -> &'static [Arc<Payload>; 4] {
    static INTERNED: OnceLock<[Arc<Payload>; 4]> = OnceLock::new();
    INTERNED.get_or_init(|| {
        [
            Arc::new(Payload::Missing),
            Arc::new(Payload::Values(vec![Value(0)])),
            Arc::new(Payload::Values(vec![Value(1)])),
            Arc::new(Payload::Values(vec![Value(BOT_SENTINEL)])),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_zero() {
        let p = Payload::defaults(3);
        assert_eq!(p, Payload::values([Value(0), Value(0), Value(0)]));
    }

    #[test]
    fn bits_scale_with_length_and_width() {
        let p = Payload::defaults(10);
        assert_eq!(p.bits(1), 10);
        assert_eq!(p.bits(3), 30);
        assert_eq!(Payload::Missing.bits(8), 0);
    }

    #[test]
    fn value_at_out_of_range_is_none() {
        let p = Payload::values([Value(1)]);
        assert_eq!(p.value_at(0), Some(Value(1)));
        assert_eq!(p.value_at(1), None);
    }

    #[test]
    fn interned_payloads_share_storage_and_compare_equal() {
        let a = Payload::values([Value(1)]).into_shared();
        let b = Payload::values([Value(1)]).into_shared();
        assert!(Arc::ptr_eq(&a, &b), "binary single values are interned");
        assert!(Arc::ptr_eq(
            &Payload::shared_missing(),
            &Payload::Missing.into_shared()
        ));
        // Everything else allocates fresh but compares structurally.
        let c = Payload::values([Value(2)]).into_shared();
        let d = Payload::values([Value(2)]).into_shared();
        assert!(!Arc::ptr_eq(&c, &d));
        assert_eq!(*c, *d);
        let long = Payload::values([Value(1), Value(1)]).into_shared();
        assert_eq!(long.num_values(), 2);
    }

    #[test]
    fn equality_is_representation_independent() {
        assert_eq!(Payload::single(Value(1)), Payload::values([Value(1)]));
        assert_eq!(
            Payload::packed([Value(0), Value(1)]),
            Payload::values([Value(0), Value(1)])
        );
        assert_ne!(Payload::single(Value(0)), Payload::values([Value(1)]));
        assert_ne!(Payload::single(Value(0)), Payload::Missing);
        assert_ne!(
            Payload::packed([Value(1)]),
            Payload::values([Value(1), Value(1)])
        );
    }

    #[test]
    fn single_matches_values_semantics() {
        for raw in [0u16, 1, 7, BOT_SENTINEL] {
            let single = Payload::single(Value(raw));
            let vector = Payload::values([Value(raw)]);
            assert_eq!(single.num_values(), 1);
            assert_eq!(single.value_at(0), vector.value_at(0), "raw={raw}");
            assert_eq!(single.value_at(1), None);
            assert_eq!(single.bits(3), vector.bits(3));
        }
    }

    #[test]
    fn single_bit_payloads_intern_to_the_values_twins() {
        for raw in [0u16, 1] {
            let from_bits = Payload::single(Value(raw)).into_shared();
            let from_vec = Payload::values([Value(raw)]).into_shared();
            assert!(Arc::ptr_eq(&from_bits, &from_vec), "raw={raw}");
            assert!(matches!(&*from_bits, Payload::Values(_)));
        }
        // The ⊥ sentinel is interned too, sharing one Arc.
        let bot_a = Payload::single(Value(BOT_SENTINEL)).into_shared();
        let bot_b = Payload::values([Value(BOT_SENTINEL)]).into_shared();
        assert!(Arc::ptr_eq(&bot_a, &bot_b));
    }

    #[test]
    fn packed_roundtrips_positionally() {
        let pattern: Vec<Value> = (0..200).map(|i| Value(u16::from(i % 3 == 0))).collect();
        let packed = Payload::packed(pattern.clone());
        assert_eq!(packed.num_values(), 200);
        for (i, v) in pattern.iter().enumerate() {
            assert_eq!(packed.value_at(i), Some(*v), "slot {i}");
        }
        assert_eq!(packed.value_at(200), None);
        assert_eq!(packed.bits(1), 200);
    }

    #[test]
    fn packed_spills_to_heap_past_inline_capacity() {
        let long: Vec<Value> = (0..300).map(|i| Value(u16::from(i % 2 == 1))).collect();
        let packed = Payload::packed(long.clone());
        let Payload::Bits { words, len } = &packed else {
            panic!("expected bits");
        };
        assert_eq!(*len, 300);
        assert!(matches!(words, SmallWords::Heap(_)));
        for (i, v) in long.iter().enumerate() {
            assert_eq!(packed.value_at(i), Some(*v), "slot {i}");
        }
    }

    #[test]
    #[should_panic(expected = "binary values only")]
    fn packed_rejects_non_binary_values() {
        let _ = Payload::packed([Value(2)]);
    }
}
