//! Execution metrics.
//!
//! The paper's theorems bound three quantities besides round count:
//! message length in bits, local computation time, and local space. The
//! simulator measures all three exactly: honest traffic is counted per
//! round, protocols charge local work to an operation counter, and peak
//! tree size is sampled after every delivery.

/// Traffic statistics for one communication round.
///
/// Only *honest* traffic is counted: the theorems bound the messages the
/// algorithm itself sends, while faulty processors may send arbitrary junk
/// at no cost to the algorithm's complexity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct RoundStats {
    /// The 1-based round number.
    pub round: usize,
    /// Point-to-point messages sent by honest processors (a broadcast to
    /// `n−1` peers counts `n−1` messages).
    pub honest_messages: u64,
    /// Total values carried by honest messages.
    pub honest_values: u64,
    /// Total bits carried by honest messages.
    pub honest_bits: u64,
    /// Largest single honest message, in values.
    pub max_message_values: u64,
    /// Largest single honest message, in bits.
    pub max_message_bits: u64,
}

/// Metrics for one full execution.
#[derive(Clone, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Per-round traffic statistics, index 0 = round 1.
    pub per_round: Vec<RoundStats>,
    /// Local computation charged by each processor (tree stores, majority
    /// scans, resolve node visits, discovery checks), indexed by processor.
    pub local_ops: Vec<u64>,
    /// Peak number of live tree nodes at any single processor.
    pub peak_tree_nodes: u64,
}

impl Metrics {
    /// Creates empty metrics for `n` processors.
    pub fn new(n: usize) -> Self {
        Metrics {
            per_round: Vec::new(),
            local_ops: vec![0; n],
            peak_tree_nodes: 0,
        }
    }

    /// Empties these metrics in place for a fresh `n`-processor run,
    /// keeping the per-round and per-processor buffer capacity — the
    /// engine's outcome-reuse path calls this so back-to-back runs do not
    /// reallocate their metric vectors.
    pub fn reset_for(&mut self, n: usize) {
        self.per_round.clear();
        self.local_ops.clear();
        self.local_ops.resize(n, 0);
        self.peak_tree_nodes = 0;
    }

    /// Number of communication rounds recorded.
    pub fn rounds(&self) -> usize {
        self.per_round.len()
    }

    /// Total honest point-to-point messages over the whole execution.
    pub fn total_messages(&self) -> u64 {
        self.per_round.iter().map(|r| r.honest_messages).sum()
    }

    /// Total honest bits over the whole execution.
    pub fn total_bits(&self) -> u64 {
        self.per_round.iter().map(|r| r.honest_bits).sum()
    }

    /// Largest single honest message over the whole execution, in bits.
    pub fn max_message_bits(&self) -> u64 {
        self.per_round
            .iter()
            .map(|r| r.max_message_bits)
            .max()
            .unwrap_or(0)
    }

    /// Largest single honest message over the whole execution, in values.
    pub fn max_message_values(&self) -> u64 {
        self.per_round
            .iter()
            .map(|r| r.max_message_values)
            .max()
            .unwrap_or(0)
    }

    /// Largest per-processor local-computation charge.
    pub fn max_local_ops(&self) -> u64 {
        self.local_ops.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(round: usize, msgs: u64, bits: u64, max_bits: u64) -> RoundStats {
        RoundStats {
            round,
            honest_messages: msgs,
            honest_values: bits,
            honest_bits: bits,
            max_message_values: max_bits,
            max_message_bits: max_bits,
        }
    }

    #[test]
    fn totals_aggregate_rounds() {
        let mut m = Metrics::new(4);
        m.per_round.push(stats(1, 3, 30, 10));
        m.per_round.push(stats(2, 6, 90, 20));
        assert_eq!(m.rounds(), 2);
        assert_eq!(m.total_messages(), 9);
        assert_eq!(m.total_bits(), 120);
        assert_eq!(m.max_message_bits(), 20);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(3);
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.max_message_bits(), 0);
        assert_eq!(m.max_local_ops(), 0);
    }

    #[test]
    fn max_local_ops_takes_max() {
        let mut m = Metrics::new(3);
        m.local_ops = vec![5, 9, 2];
        assert_eq!(m.max_local_ops(), 9);
    }
}
