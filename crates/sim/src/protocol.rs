//! The protocol interface and per-processor execution context.
//!
//! Every algorithm in the paper fits the same synchronous skeleton: each
//! round, a processor may broadcast one payload; the network then delivers
//! every peer's payload at once; after the final round the processor
//! decides. [`Protocol`] captures exactly that skeleton, and the engine in
//! [`crate::engine`] drives it.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::RunConfig;
use crate::id::ProcessId;
use crate::payload::Payload;
use crate::sig::{SigRegistry, SignedRelay};
use crate::trace::{Trace, TraceEntry, TraceEvent};
use crate::value::Value;

/// What a processor reports to the engine at the end of a round: whether
/// its decision is already final or the protocol must keep running.
///
/// The engine's early-stopping rule (see [`crate::engine`]) terminates a
/// run before its static schedule ends once **every correct** processor
/// reports [`RoundStatus::ReadyToDecide`] — faulty processors never gate
/// termination. A processor should report ready only when its
/// [`Protocol::decide`] value can no longer change *given that every other
/// correct processor is simultaneously ready*; the engine evaluates the
/// conjunction omnisciently, so per-processor hooks may rely on that
/// global context (e.g. "I locked this phase" is sound because all-locked
/// implies unanimity-forever in the king family).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RoundStatus {
    /// The protocol must run its next scheduled round.
    #[default]
    Continue,
    /// This processor's decision is final; it can stop whenever every
    /// other correct processor is also ready.
    ReadyToDecide,
}

/// What a processor asks the engine to do next — the dynamic-schedule
/// counterpart of [`RoundStatus`], consulted once per round through
/// [`Protocol::next_action`].
///
/// The engine no longer drives a fixed `1..=total_rounds()` loop: after
/// every round it polls each *correct* processor and
///
/// * runs another round while any correct processor answers
///   [`GearAction::Round`];
/// * commits a gear shift — calling [`Protocol::shift_gear`] on **every**
///   instance, shadows of faulty processors included, so the schedule
///   stays common — when every correct processor answers
///   [`GearAction::ShiftGear`] in the same round;
/// * ends the run when every correct processor answers
///   [`GearAction::Finished`] (or when round `total_rounds()` completes,
///   the engine's hard schedule ceiling).
///
/// The default implementation replays the static schedule exactly
/// (`Round` until round `total_rounds()`, then `Finished`), so existing
/// protocols keep working unchanged — the same opt-in pattern as
/// [`Protocol::reset`] and [`Protocol::round_status`]. Like
/// `round_status`, the all-correct conjunction is evaluated omnisciently
/// by the engine: a processor may propose a shift from purely local
/// evidence because the shift only commits if every correct processor
/// simultaneously proposes it, and a non-committed proposal has no
/// effect (the current segment simply continues).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GearAction {
    /// Run the next scheduled round of the current segment.
    #[default]
    Round,
    /// Local fault evidence justifies shifting into the protocol's next
    /// gear segment now; the engine commits the shift only on a
    /// unanimous correct-processor proposal.
    ShiftGear,
    /// The (possibly dynamically shortened) schedule is exhausted;
    /// nothing is left to run.
    Finished,
}

/// Bit-packed view of one round's single-value binary broadcasts, one bit
/// per sender: `ones` has sender `j`'s bit set iff `j`'s payload reads
/// `Value(1)` at position 0, `zeros` likewise for `Value(0)`. A sender in
/// neither mask sent nothing readable (missing, out-of-domain, or a `⊥`
/// sentinel) — exactly the cases receivers treat as `⊥`/default.
///
/// The engine attaches this to the [`Inbox`] for binary-domain rounds at
/// `n ≤ 64`; receivers tally majorities and thresholds with
/// `count_ones()` word operations instead of touching `n` payloads. The
/// masks are a *view* of the inbox contents, never an extra source of
/// truth: every protocol falls back to the payload slots when they are
/// absent, and the two paths are bit-identical (pinned by
/// `tests/instance_pool.rs`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PackedBallots {
    /// Senders whose payload reads `Value(1)` at position 0.
    pub ones: u64,
    /// Senders whose payload reads `Value(0)` at position 0.
    pub zeros: u64,
}

impl PackedBallots {
    /// Removes `sender` from both masks.
    #[inline]
    pub fn clear(&mut self, sender: ProcessId) {
        let m = !(1u64 << sender.index());
        self.ones &= m;
        self.zeros &= m;
    }

    /// Records `sender` as having sent the binary value `v`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `v ∈ {0, 1}`.
    #[inline]
    pub fn record(&mut self, sender: ProcessId, v: Value) {
        debug_assert!(v.raw() <= 1, "ballots are binary");
        let m = 1u64 << sender.index();
        if v.raw() == 1 {
            self.ones |= m;
        } else {
            self.zeros |= m;
        }
    }
}

/// One round's worth of received messages, indexed by sender.
///
/// Payloads are reference-counted so that an honest broadcast — one
/// payload fanned out to `n−1` recipients — is stored once, not cloned per
/// recipient; EIG messages grow as `O(n^b)` values and per-recipient
/// copies would dominate memory.
///
/// The slot for the receiver itself is [`Payload::Missing`]; processors in
/// this model never message themselves (their own contribution is already
/// in their local state).
#[derive(Clone, Debug)]
pub struct Inbox {
    payloads: Vec<Arc<Payload>>,
    ballots: Option<PackedBallots>,
}

impl Inbox {
    /// An inbox of `n` missing payloads (all sharing the interned
    /// missing singleton — no per-slot allocation).
    pub fn empty(n: usize) -> Self {
        Inbox {
            payloads: vec![Payload::shared_missing(); n],
            ballots: None,
        }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.payloads.len()
    }

    /// The payload received from `sender`.
    pub fn from(&self, sender: ProcessId) -> &Payload {
        &self.payloads[sender.index()]
    }

    /// Replaces the payload from `sender` (used by tests and by fault
    /// masking before interpretation). Drops any packed-ballot view,
    /// which would otherwise go stale.
    pub fn set(&mut self, sender: ProcessId, payload: Payload) {
        self.payloads[sender.index()] = Arc::new(payload);
        self.ballots = None;
    }

    /// Replaces the payload from `sender` with a shared payload (see
    /// [`Inbox::set`] for the ballot-invalidating contract).
    pub fn set_shared(&mut self, sender: ProcessId, payload: Arc<Payload>) {
        self.payloads[sender.index()] = payload;
        self.ballots = None;
    }

    /// The bit-packed single-value view of this round, when the engine
    /// attached one (binary domain, `n ≤ 64`). `None` means receivers
    /// must read the payload slots.
    #[inline]
    pub fn ballots(&self) -> Option<PackedBallots> {
        self.ballots
    }

    /// Attaches the packed-ballot view. The engine calls this *after*
    /// filling every payload slot; the masks must describe exactly what
    /// [`Inbox::from`]`(j).value_at(0)` reads for every sender `j`.
    pub fn set_ballots(&mut self, ballots: Option<PackedBallots>) {
        self.ballots = ballots;
    }
}

/// Per-processor execution context: identity, round clock, local-work
/// accounting, tracing, and (for authenticated baselines) signing.
#[derive(Clone, Debug)]
pub struct ProcCtx {
    /// This processor's identity.
    pub me: ProcessId,
    /// Current 1-based round (0 before the first round / at decision time).
    pub round: usize,
    ops: u64,
    trace_enabled: bool,
    trace: Vec<TraceEntry>,
    sigs: Option<Arc<Mutex<SigRegistry>>>,
}

impl ProcCtx {
    /// Creates a context for processor `me`.
    pub fn new(me: ProcessId) -> Self {
        ProcCtx {
            me,
            round: 0,
            ops: 0,
            trace_enabled: false,
            trace: Vec::new(),
            sigs: None,
        }
    }

    /// Enables event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace_enabled = true;
        self
    }

    /// Attaches the shared signature registry (authenticated baselines).
    pub fn with_sigs(mut self, sigs: Arc<Mutex<SigRegistry>>) -> Self {
        self.sigs = Some(sigs);
        self
    }

    /// Re-initializes this context for a new run, keeping the trace
    /// buffer's capacity. Used by the engine's arena so back-to-back runs
    /// reuse context storage instead of allocating `n` fresh contexts.
    pub(crate) fn reset(
        &mut self,
        me: ProcessId,
        trace_enabled: bool,
        sigs: Option<Arc<Mutex<SigRegistry>>>,
    ) {
        self.me = me;
        self.round = 0;
        self.ops = 0;
        self.trace_enabled = trace_enabled;
        self.trace.clear();
        self.sigs = sigs;
    }

    /// Charges `n` units of local computation (tree stores, majority
    /// scans, resolve visits, discovery checks…).
    #[inline]
    pub fn charge(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total local computation charged so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Emits a trace event (no-op when tracing is disabled).
    pub fn emit(&mut self, event: TraceEvent) {
        if self.trace_enabled {
            self.trace.push(TraceEntry {
                who: self.me,
                round: self.round,
                event,
            });
        }
    }

    /// Number of trace entries currently buffered.
    pub(crate) fn trace_len(&self) -> usize {
        self.trace.len()
    }

    /// Drains accumulated trace entries into `sink`.
    pub fn drain_trace_into(&mut self, sink: &mut Trace) {
        for e in self.trace.drain(..) {
            sink.push(e);
        }
    }

    /// Signs `value` as this processor, starting a fresh chain.
    ///
    /// # Panics
    ///
    /// Panics if no signature registry is attached (unauthenticated runs).
    pub fn sign(&mut self, value: Value) -> SignedRelay {
        let sigs = self.sigs.as_ref().expect("signature registry attached");
        sigs.lock().originate(self.me, value)
    }

    /// Extends `relay` with this processor's signature, if `relay` is valid.
    ///
    /// # Panics
    ///
    /// Panics if no signature registry is attached.
    pub fn extend(&mut self, relay: &SignedRelay) -> Option<SignedRelay> {
        let sigs = self.sigs.as_ref().expect("signature registry attached");
        sigs.lock().extend(relay, self.me)
    }

    /// Verifies a relay against the shared registry.
    ///
    /// # Panics
    ///
    /// Panics if no signature registry is attached.
    pub fn verify(&self, relay: &SignedRelay) -> bool {
        let sigs = self.sigs.as_ref().expect("signature registry attached");
        sigs.lock().is_valid(relay)
    }
}

/// A Byzantine-agreement protocol as run by one processor.
///
/// The engine drives the same schedule for every processor:
///
/// 1. round by round: call [`Protocol::outgoing`] on every processor,
///    deliver the combined [`Inbox`] via [`Protocol::deliver`], then
///    consult [`Protocol::round_status`] (early stopping) and
///    [`Protocol::next_action`] (dynamic gear dispatch) to decide
///    whether to run another round, commit a gear shift, or end the run
///    — never exceeding the [`Protocol::total_rounds`] ceiling;
/// 2. after the last executed round, call [`Protocol::decide`] once.
///
/// Implementations must be deterministic functions of their inputs — the
/// paper's model has no randomness — so that shadow copies of faulty
/// processors (used to show adversaries what an honest processor *would*
/// send) stay consistent.
pub trait Protocol {
    /// The worst-case number of communication rounds this protocol runs:
    /// the exact schedule for fixed-schedule protocols (the default
    /// [`Protocol::next_action`] replays it), and the longest schedule
    /// any gear sequence can produce for dynamic ones. The engine never
    /// issues a round beyond it.
    fn total_rounds(&self) -> usize;

    /// The payload this processor broadcasts in round `ctx.round`.
    ///
    /// `None` means the processor is silent this round (e.g. the source
    /// after round 1 in tree-without-repetition algorithms).
    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload>;

    /// Delivers the full round's inbox.
    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx);

    /// Irreversibly decides after the final round.
    fn decide(&mut self, ctx: &mut ProcCtx) -> Value;

    /// Current number of live principal-data-structure nodes, for peak
    /// space accounting. Default 0 for protocols without trees.
    fn space_nodes(&self) -> u64 {
        0
    }

    /// This processor's termination status at the end of the round in
    /// `ctx.round`, consulted by the engine *after* the round's
    /// deliveries. The default — always [`RoundStatus::Continue`] — keeps
    /// external implementations valid and simply opts the protocol out of
    /// early stopping (it runs its full static schedule), mirroring the
    /// [`Protocol::reset`] pattern.
    ///
    /// Implementations must be deterministic functions of delivered state
    /// so that pooled/fresh and packed/fallback runs remain bit-identical,
    /// and must only report ready when the decision is provably final
    /// under the engine's all-correct-ready rule (see [`RoundStatus`]).
    fn round_status(&self, _ctx: &ProcCtx) -> RoundStatus {
        RoundStatus::Continue
    }

    /// The schedule dispatch hook, consulted by the engine *after* the
    /// round's deliveries (and after [`Protocol::round_status`]): what
    /// this processor wants the engine to do next. The default replays
    /// the static schedule — [`GearAction::Round`] while `ctx.round` is
    /// below [`Protocol::total_rounds`], [`GearAction::Finished`] once it
    /// is reached — so external implementations keep their fixed-length
    /// behaviour bit-exactly (the `reset`/`round_status` opt-in pattern).
    ///
    /// Dynamic protocols override this to shorten the schedule at
    /// runtime: answer [`GearAction::ShiftGear`] at a segment boundary
    /// when local fault evidence justifies shifting, and
    /// [`GearAction::Finished`] once the (possibly truncated) dynamic
    /// schedule is complete. Implementations must be deterministic
    /// functions of delivered state, must never extend the schedule past
    /// `total_rounds()` (the engine enforces that ceiling), and must keep
    /// `Finished` monotone — once returned, every later round returns it
    /// too.
    fn next_action(&self, ctx: &ProcCtx) -> GearAction {
        if ctx.round >= self.total_rounds() {
            GearAction::Finished
        } else {
            GearAction::Round
        }
    }

    /// Commits a gear shift proposed unanimously through
    /// [`Protocol::next_action`]. The engine calls this on **every**
    /// instance — correct processors and the honest shadows of faulty
    /// ones alike — immediately after the round whose deliveries produced
    /// the unanimous [`GearAction::ShiftGear`] vote, so all instances
    /// move to the new segment in lockstep. The default is a no-op
    /// (static protocols never see it).
    fn shift_gear(&mut self, _ctx: &mut ProcCtx) {}

    /// Restores this instance to the state a freshly constructed instance
    /// for processor `id` under `config` would have, returning `true` on
    /// success. The engine's instance pool calls this to recycle protocol
    /// instances across runs instead of consulting the factory; a `false`
    /// return (the default, so external implementations keep working
    /// unchanged) is a pool miss and the factory builds a replacement.
    ///
    /// Implementations may assume the *shape* of the instance matches the
    /// new run — same algorithm, same `(n, t)` — because the pool is
    /// keyed by [`crate::PoolKey`]; everything else (identity, source,
    /// source value, domain) must be re-derived from the arguments.
    /// `tests/instance_pool.rs` pins down that pooled-reset runs are
    /// bit-identical to fresh-instance runs.
    fn reset(&mut self, _id: ProcessId, _config: &RunConfig) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inbox_indexes_by_sender() {
        let mut inbox = Inbox::empty(3);
        inbox.set(ProcessId(1), Payload::values([Value(1)]));
        assert!(inbox.from(ProcessId(0)).is_missing());
        assert_eq!(inbox.from(ProcessId(1)).num_values(), 1);
        assert_eq!(inbox.n(), 3);
    }

    #[test]
    fn ctx_charges_accumulate() {
        let mut ctx = ProcCtx::new(ProcessId(0));
        ctx.charge(3);
        ctx.charge(4);
        assert_eq!(ctx.ops(), 7);
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut ctx = ProcCtx::new(ProcessId(0));
        ctx.emit(TraceEvent::Note {
            text: "x".to_string(),
        });
        let mut sink = Trace::new();
        ctx.drain_trace_into(&mut sink);
        assert!(sink.entries().is_empty());
    }

    #[test]
    fn trace_enabled_records() {
        let mut ctx = ProcCtx::new(ProcessId(2)).with_trace();
        ctx.round = 5;
        ctx.emit(TraceEvent::Decided { value: Value(1) });
        let mut sink = Trace::new();
        ctx.drain_trace_into(&mut sink);
        assert_eq!(sink.entries().len(), 1);
        assert_eq!(sink.entries()[0].who, ProcessId(2));
        assert_eq!(sink.entries()[0].round, 5);
    }

    #[test]
    fn signing_through_ctx() {
        let reg = Arc::new(Mutex::new(SigRegistry::new()));
        let mut ctx = ProcCtx::new(ProcessId(0)).with_sigs(reg.clone());
        let relay = ctx.sign(Value(1));
        assert!(ctx.verify(&relay));
        let mut ctx2 = ProcCtx::new(ProcessId(1)).with_sigs(reg);
        let extended = ctx2.extend(&relay).unwrap();
        assert_eq!(extended.chain.len(), 2);
    }
}
