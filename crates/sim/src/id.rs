//! Processor identifiers and identifier sets.
//!
//! The paper's model (§2) gives every processor a unique identification
//! number that is common knowledge. We model identifiers as dense indices
//! `0..n`, which lets the rest of the system use flat vectors keyed by
//! processor everywhere.

use std::fmt;

/// A processor identifier: a dense index in `0..n`.
///
/// `ProcessId` is a newtype so that processor indices cannot be confused
/// with round numbers, tree levels, or payload offsets.
///
/// # Examples
///
/// ```
/// use sg_sim::ProcessId;
///
/// let p = ProcessId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "P3");
/// ```
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Debug,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The dense index of this processor in `0..n`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

/// A set of processors out of a system of `n`, stored as a bitmap.
///
/// Used for fault sets and for the lists `L_p` of discovered faulty
/// processors. All operations are O(1) or O(n) with tiny constants, which
/// matters because discovery rules consult the set on every tree node.
///
/// # Examples
///
/// ```
/// use sg_sim::{ProcessId, ProcessSet};
///
/// let mut s = ProcessSet::new(5);
/// s.insert(ProcessId(2));
/// assert!(s.contains(ProcessId(2)));
/// assert_eq!(s.len(), 1);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![ProcessId(2)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct ProcessSet {
    bits: Vec<bool>,
    count: usize,
}

impl ProcessSet {
    /// Creates an empty set over a system of `n` processors.
    pub fn new(n: usize) -> Self {
        ProcessSet {
            bits: vec![false; n],
            count: 0,
        }
    }

    /// Creates a set containing the given processors.
    ///
    /// # Panics
    ///
    /// Panics if any member's index is `>= n`.
    pub fn from_members<I: IntoIterator<Item = ProcessId>>(n: usize, members: I) -> Self {
        let mut set = ProcessSet::new(n);
        for p in members {
            set.insert(p);
        }
        set
    }

    /// The system size `n` this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.bits.len()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether `p` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= n`.
    #[inline]
    pub fn contains(&self, p: ProcessId) -> bool {
        self.bits[p.index()]
    }

    /// Inserts `p`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= n`.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let slot = &mut self.bits[p.index()];
        if *slot {
            false
        } else {
            *slot = true;
            self.count += 1;
            true
        }
    }

    /// Empties the set in place, keeping its universe and storage —
    /// the allocation-free counterpart of rebuilding with
    /// [`ProcessSet::new`], used by pooled protocol instances.
    pub fn clear(&mut self) {
        self.bits.fill(false);
        self.count = 0;
    }

    /// Removes `p`; returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let slot = &mut self.bits[p.index()];
        if *slot {
            *slot = false;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Iterates over members in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| ProcessId(i))
    }

    /// The complement of this set within `0..n`.
    pub fn complement(&self) -> ProcessSet {
        let mut out = ProcessSet::new(self.universe());
        for i in 0..self.universe() {
            if !self.bits[i] {
                out.insert(ProcessId(i));
            }
        }
        out
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<T: IntoIterator<Item = ProcessId>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId(0).to_string(), "P0");
        assert_eq!(ProcessId(12).to_string(), "P12");
    }

    #[test]
    fn set_insert_remove_roundtrip() {
        let mut s = ProcessSet::new(8);
        assert!(s.is_empty());
        assert!(s.insert(ProcessId(3)));
        assert!(!s.insert(ProcessId(3)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(ProcessId(3)));
        assert!(s.remove(ProcessId(3)));
        assert!(!s.remove(ProcessId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_iter_sorted() {
        let s = ProcessSet::from_members(6, [ProcessId(5), ProcessId(1), ProcessId(3)]);
        let got: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn complement_partitions_universe() {
        let s = ProcessSet::from_members(5, [ProcessId(0), ProcessId(4)]);
        let c = s.complement();
        assert_eq!(c.len(), 3);
        for i in 0..5 {
            assert_ne!(s.contains(ProcessId(i)), c.contains(ProcessId(i)));
        }
    }

    #[test]
    fn set_display() {
        let s = ProcessSet::from_members(5, [ProcessId(2), ProcessId(0)]);
        assert_eq!(s.to_string(), "{P0, P2}");
    }
}
