//! # sg-sim — synchronous Byzantine-agreement simulator substrate
//!
//! This crate implements the execution model of Bar-Noy, Dolev, Dwork &
//! Strong, *"Shifting Gears: Changing Algorithms on the Fly to Expedite
//! Byzantine Agreement"* (§2): a completely synchronous system of `n`
//! processors on a fully reliable complete network, with a distinguished
//! source, unauthenticated Byzantine faults, and known message provenance.
//!
//! The crate provides:
//!
//! * [`ProcessId`] / [`ProcessSet`] — processor identities and sets;
//! * [`Value`] / [`ValueDomain`] — the finite agreement domain `V`;
//! * [`Payload`] / [`Inbox`] — canonical-order message vectors;
//! * [`Protocol`] / [`ProcCtx`] — the per-processor protocol interface
//!   with local-computation accounting and tracing;
//! * [`Adversary`] / [`AdversaryView`] — a full-information rushing
//!   adversary interface;
//! * [`engine::run`] — the lockstep round engine, producing an
//!   [`Outcome`] with exact message/bit/op/space [`Metrics`];
//! * [`sig`] — a simulated unforgeable-signature oracle for the
//!   authenticated Dolev–Strong baseline.
//!
//! # Examples
//!
//! Running a trivial protocol fault-free (protocol implementations live in
//! `sg-core`; here we only show the engine's shape):
//!
//! ```
//! use sg_sim::{run, NoFaults, Payload, ProcCtx, ProcessId, Protocol, RunConfig, Value, Inbox};
//!
//! struct Echo { me: ProcessId, got: Value }
//! impl Protocol for Echo {
//!     fn total_rounds(&self) -> usize { 1 }
//!     fn outgoing(&mut self, _ctx: &mut ProcCtx) -> Option<Payload> {
//!         (self.me == ProcessId(0)).then(|| Payload::values([Value(1)]))
//!     }
//!     fn deliver(&mut self, inbox: &Inbox, _ctx: &mut ProcCtx) {
//!         if self.me != ProcessId(0) {
//!             self.got = inbox.from(ProcessId(0)).value_at(0).unwrap_or_default();
//!         } else {
//!             self.got = Value(1);
//!         }
//!     }
//!     fn decide(&mut self, _ctx: &mut ProcCtx) -> Value { self.got }
//! }
//!
//! let config = RunConfig::new(4, 0);
//! let outcome = run(&config, &mut NoFaults, |me| Box::new(Echo { me, got: Value::DEFAULT }));
//! assert!(outcome.agreement());
//! assert_eq!(outcome.decision(), Some(Value(1)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adversary;
pub mod batch;
pub mod engine;
mod id;
mod metrics;
mod payload;
mod protocol;
pub mod sig;
pub mod trace;
mod value;

pub use adversary::{Adversary, AdversaryView, NoFaults};
pub use batch::{
    batch_adversaries_enabled, batch_runs_enabled, run_batch, run_batch_with,
    set_batch_adversaries, set_batch_runs, BatchAdversary, BatchArena, BatchKernel, BatchNet,
    BatchRunResult, LaneCounts, LaneView, ScalarBridge, WideRound, MAX_BATCH_RUNS,
};
pub use engine::{
    early_stopping_enabled, instance_pooling_enabled, packed_broadcast_enabled, run, run_in,
    run_into, run_pooled, run_pooled_in, run_pooled_into, set_early_stopping, set_instance_pooling,
    set_packed_broadcast, Outcome, PoolKey, RunArena, RunConfig,
};
pub use id::{ProcessId, ProcessSet};
pub use metrics::{Metrics, RoundStats};
pub use payload::{Payload, SmallWords};
pub use protocol::{GearAction, Inbox, PackedBallots, ProcCtx, Protocol, RoundStatus};
pub use trace::{Trace, TraceEntry, TraceEvent};
pub use value::{Value, ValueDomain};
