//! Execution tracing.
//!
//! Protocols emit structured events (phase starts, shifts, fault
//! discoveries, decisions) through their [`crate::ProcCtx`]. Tracing is
//! opt-in per run; when disabled, `emit` is a no-op so the hot path stays
//! allocation-free.

use crate::id::ProcessId;
use crate::value::Value;

/// A structured event emitted by a protocol during execution.
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum TraceEvent {
    /// A protocol phase began (e.g. the hybrid entering its Algorithm B
    /// phase). `name` identifies the phase.
    PhaseStart {
        /// Human-readable phase name.
        name: String,
    },
    /// A shift operator `shift_{k→j}` was applied: the principal data
    /// structure was converted and shrunk.
    Shift {
        /// The conversion function used ("resolve", "resolve'", …).
        conversion: String,
        /// The processor's preferred value after the shift.
        preferred: Value,
    },
    /// The processor added `suspect` to its list `L_p` of discovered
    /// faulty processors.
    Discovered {
        /// The newly discovered faulty processor.
        suspect: ProcessId,
        /// Whether the discovery happened during conversion
        /// (Algorithm A's extra rule) rather than information gathering.
        during_conversion: bool,
    },
    /// End-of-round preferred value (root of the processor's tree).
    Preferred {
        /// Current preferred value.
        value: Value,
    },
    /// The processor irreversibly decided.
    Decided {
        /// The decision value.
        value: Value,
    },
    /// Free-form annotation for protocol-specific milestones.
    Note {
        /// Annotation text.
        text: String,
    },
}

/// A trace entry: who emitted what, and in which round.
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct TraceEntry {
    /// The emitting processor.
    pub who: ProcessId,
    /// The communication round during which the event occurred
    /// (0 for pre-round / decision-time events).
    pub round: usize,
    /// The event.
    pub event: TraceEvent,
}

/// An ordered log of trace entries from one execution.
#[derive(Clone, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// Removes every entry, keeping the buffer capacity (the engine's
    /// outcome-reuse path empties the previous run's trace in place).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Reserves capacity for at least `additional` more entries (the
    /// engine sizes the run trace in one allocation when draining
    /// per-processor buffers).
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// All entries in emission order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries emitted by one processor, in order.
    pub fn by(&self, who: ProcessId) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.who == who)
    }

    /// Entries emitted during one round, in order.
    pub fn in_round(&self, round: usize) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.round == round)
    }

    /// Whether any entry matches the predicate.
    pub fn any<F: Fn(&TraceEntry) -> bool>(&self, pred: F) -> bool {
        self.entries.iter().any(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_by_processor_and_round() {
        let mut t = Trace::new();
        t.push(TraceEntry {
            who: ProcessId(1),
            round: 2,
            event: TraceEvent::Preferred { value: Value(1) },
        });
        t.push(TraceEntry {
            who: ProcessId(2),
            round: 3,
            event: TraceEvent::Decided { value: Value(0) },
        });
        assert_eq!(t.by(ProcessId(1)).count(), 1);
        assert_eq!(t.in_round(3).count(), 1);
        assert!(t.any(|e| matches!(e.event, TraceEvent::Decided { .. })));
    }
}
