//! Agreement values and the finite value domain `V`.
//!
//! The paper (§2) draws the source's initial value from a finite set `V`
//! with `0 ∈ V` and treats `|V|` as a constant. We model `V` as
//! `{0, 1, …, |V|−1}` and use `0` as the default value everywhere the paper
//! does (missing messages, failed majorities, masked faults).

use std::fmt;

/// A value from the finite agreement domain `V = {0..|V|−1}`.
///
/// `Value::DEFAULT` is the paper's distinguished default `0 ∈ V`: it is
/// stored when the source fails to send a legitimate value, substituted for
/// inappropriate message contents, produced when `resolve` finds no
/// majority, and sent on behalf of masked faulty processors.
///
/// # Examples
///
/// ```
/// use sg_sim::Value;
///
/// assert_eq!(Value::DEFAULT, Value(0));
/// assert_eq!(Value(1).to_string(), "1");
/// ```
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Debug,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Value(pub u16);

impl Value {
    /// The paper's default value `0 ∈ V`.
    pub const DEFAULT: Value = Value(0);

    /// The raw numeric representation.
    #[inline]
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for Value {
    fn from(raw: u16) -> Self {
        Value(raw)
    }
}

/// The finite value domain `V = {0..size−1}` (paper §2).
///
/// The domain determines which received values are legitimate (illegitimate
/// ones are replaced by [`Value::DEFAULT`]) and how many bits a single value
/// costs when accounting message length.
///
/// # Examples
///
/// ```
/// use sg_sim::{Value, ValueDomain};
///
/// let v = ValueDomain::binary();
/// assert_eq!(v.size(), 2);
/// assert_eq!(v.bits_per_value(), 1);
/// assert!(v.contains(Value(1)));
/// assert!(!v.contains(Value(2)));
/// assert_eq!(v.sanitize(Value(7)), Value::DEFAULT);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct ValueDomain {
    size: u16,
}

impl ValueDomain {
    /// Creates a domain `{0..size−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `size < 2`: agreement is trivial over a singleton domain
    /// and the paper assumes at least two values.
    pub fn new(size: u16) -> Self {
        assert!(size >= 2, "value domain must contain at least two values");
        ValueDomain { size }
    }

    /// The binary domain `V = {0, 1}`, the common case after applying
    /// Coan's two-value reduction mentioned in §2 of the paper.
    pub fn binary() -> Self {
        ValueDomain::new(2)
    }

    /// Number of values in the domain.
    #[inline]
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Whether `v` is a legitimate value of the domain.
    #[inline]
    pub fn contains(&self, v: Value) -> bool {
        v.0 < self.size
    }

    /// Replaces an illegitimate value by the default, as the paper requires
    /// for "inappropriate" message contents.
    #[inline]
    pub fn sanitize(&self, v: Value) -> Value {
        if self.contains(v) {
            v
        } else {
            Value::DEFAULT
        }
    }

    /// Bits needed to encode one value: `⌈log₂ |V|⌉`.
    pub fn bits_per_value(&self) -> u64 {
        let size = u64::from(self.size);
        // ceil(log2(size)); size >= 2 so the subtraction is safe.
        64 - (size - 1).leading_zeros() as u64
    }

    /// Iterates over all values of the domain in ascending order.
    pub fn values(&self) -> impl Iterator<Item = Value> {
        (0..self.size).map(Value)
    }
}

impl Default for ValueDomain {
    fn default() -> Self {
        ValueDomain::binary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_value_is_ceil_log2() {
        assert_eq!(ValueDomain::new(2).bits_per_value(), 1);
        assert_eq!(ValueDomain::new(3).bits_per_value(), 2);
        assert_eq!(ValueDomain::new(4).bits_per_value(), 2);
        assert_eq!(ValueDomain::new(5).bits_per_value(), 3);
        assert_eq!(ValueDomain::new(256).bits_per_value(), 8);
        assert_eq!(ValueDomain::new(257).bits_per_value(), 9);
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn singleton_domain_rejected() {
        let _ = ValueDomain::new(1);
    }

    #[test]
    fn sanitize_clamps_to_default() {
        let d = ValueDomain::new(3);
        assert_eq!(d.sanitize(Value(2)), Value(2));
        assert_eq!(d.sanitize(Value(3)), Value::DEFAULT);
    }

    #[test]
    fn values_enumerates_domain() {
        let d = ValueDomain::new(3);
        let vs: Vec<Value> = d.values().collect();
        assert_eq!(vs, vec![Value(0), Value(1), Value(2)]);
    }
}
