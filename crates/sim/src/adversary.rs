//! The adversary interface.
//!
//! The paper's fault model (§2) places *no restriction* on faulty
//! behaviour. We model the strongest standard adversary consistent with
//! that: a **full-information rushing** adversary that, each round, sees
//! every honest processor's broadcast *before* choosing, per faulty sender
//! and per recipient, an arbitrary payload. Concrete strategies live in
//! the `sg-adversary` crate; the trait lives here so the engine can drive
//! them.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::id::{ProcessId, ProcessSet};
use crate::payload::Payload;
use crate::sig::{SigRegistry, SignedRelay};
use crate::value::{Value, ValueDomain};

/// Everything the adversary may see when choosing a faulty payload.
///
/// The view exposes the current round's honest broadcasts (rushing), the
/// *shadow* broadcasts — what each faulty processor would have sent had it
/// been honest — and static system parameters. Strategies that want to be
/// "mostly honest" start from their shadow payload and corrupt it.
pub struct AdversaryView<'a> {
    /// Current 1-based round.
    pub round: usize,
    /// Total rounds the protocol will run.
    pub total_rounds: usize,
    /// System size.
    pub n: usize,
    /// Fault bound the protocol was instantiated with.
    pub t: usize,
    /// The distinguished source processor.
    pub source: ProcessId,
    /// The source's initial value (the adversary knows everything).
    pub source_value: Value,
    /// The agreement value domain.
    pub domain: ValueDomain,
    /// The set of faulty processors.
    pub faulty: &'a ProcessSet,
    /// Honest broadcasts this round, indexed by sender; `None` for faulty
    /// senders and for silent honest senders. Payloads are shared, not
    /// cloned per recipient.
    pub honest_broadcast: &'a [Option<Arc<Payload>>],
    /// What each faulty sender would broadcast if honest, indexed by
    /// sender; `None` for honest senders and for silent shadows.
    pub shadow_broadcast: &'a [Option<Arc<Payload>>],
    /// Signature registry handle (authenticated baselines only).
    pub sigs: Option<Arc<Mutex<SigRegistry>>>,
}

impl AdversaryView<'_> {
    /// The payload `sender` would broadcast this round if it were honest,
    /// if any.
    pub fn shadow_of(&self, sender: ProcessId) -> Option<&Payload> {
        self.shadow_broadcast[sender.index()].as_deref()
    }

    /// The number of values an honest broadcast from `sender` would carry
    /// this round (0 if it would be silent).
    pub fn expected_len(&self, sender: ProcessId) -> usize {
        self.shadow_of(sender).map_or(0, Payload::num_values)
    }

    /// The honest broadcast of `sender` this round, if any.
    pub fn honest_of(&self, sender: ProcessId) -> Option<&Payload> {
        self.honest_broadcast[sender.index()].as_deref()
    }

    /// Signs `value` as the (faulty) processor `signer`.
    ///
    /// Faulty processors may sign anything as themselves; they cannot
    /// forge others' signatures (the registry enforces this).
    ///
    /// # Panics
    ///
    /// Panics if no signature registry is attached or if `signer` is not
    /// faulty — the adversary may not sign on behalf of honest processors.
    pub fn sign_as(&self, signer: ProcessId, value: Value) -> SignedRelay {
        assert!(
            self.faulty.contains(signer),
            "adversary may only sign as faulty processors"
        );
        let sigs = self.sigs.as_ref().expect("signature registry attached");
        sigs.lock().originate(signer, value)
    }

    /// Extends a valid relay with a faulty processor's signature.
    ///
    /// # Panics
    ///
    /// Panics if no signature registry is attached or `signer` is honest.
    pub fn extend_as(&self, signer: ProcessId, relay: &SignedRelay) -> Option<SignedRelay> {
        assert!(
            self.faulty.contains(signer),
            "adversary may only sign as faulty processors"
        );
        let sigs = self.sigs.as_ref().expect("signature registry attached");
        sigs.lock().extend(relay, signer)
    }
}

/// A Byzantine adversary: picks the fault set, then per round and per
/// (faulty sender, recipient) pair picks an arbitrary payload.
pub trait Adversary {
    /// Short human-readable strategy name for reports.
    fn name(&self) -> String;

    /// The strategy name as a shared string, stored into every
    /// [`crate::Outcome`]. The default allocates via [`Adversary::name`];
    /// poolable strategies override it with a clone of a cached
    /// `Arc<str>` so the per-run name allocation disappears from the
    /// sweep hot path.
    fn name_shared(&self) -> Arc<str> {
        Arc::from(self.name())
    }

    /// Restores this instance to the state a freshly constructed instance
    /// for `seed` would have, returning `true` on success. The sweep
    /// engine's adversary pool calls this to recycle strategy instances
    /// across runs of one family instead of boxing a fresh strategy per
    /// run; a `false` return (the default, so external implementations
    /// keep working unchanged) is a pool miss and the family factory
    /// builds a replacement.
    ///
    /// Implementations may assume the instance was built by the same
    /// factory (same family, same configuration) — the pool guarantees
    /// it — and must restore *exactly* the freshly-constructed state so
    /// pooled and fresh sweeps stay bit-identical.
    fn reseed(&mut self, _seed: u64) -> bool {
        false
    }

    /// Chooses the set of faulty processors for this execution.
    ///
    /// Called once, before round 1. Implementations should corrupt at most
    /// `t` processors if they want the protocol's guarantees to apply —
    /// the engine records but does not enforce the bound, so experiments
    /// can also probe over-threshold behaviour.
    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet;

    /// The payload faulty `sender` sends to `recipient` in the viewed
    /// round. Called once per (sender, recipient) pair per round, in
    /// deterministic order (senders ascending, recipients ascending).
    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload;

    /// Whether this adversary also attacks *honest* edges (message loss
    /// between correct processors — network partitions, per-edge
    /// omission). The engine latches this once per run, before round 1:
    /// `false` (the default) keeps the delivery loop on its shared-inbox
    /// fast path with zero extra cost, `true` switches the run to
    /// per-recipient inbox fills consulting [`Adversary::edge_cut`] for
    /// every honest edge.
    ///
    /// Cutting an honest edge models link failure, not sender failure:
    /// traffic accounting still charges the sender for the broadcast,
    /// and the sender stays in the correct set for agreement/validity.
    fn has_edge_faults(&self) -> bool {
        false
    }

    /// Returns `true` to drop the honest broadcast from `sender` to
    /// `recipient` in the viewed round (the recipient sees a missing
    /// payload). Consulted once per (honest sender, recipient ≠ sender)
    /// pair per round, in deterministic order (recipients ascending,
    /// senders ascending) — and only when [`Adversary::has_edge_faults`]
    /// was `true` at run start.
    fn edge_cut(
        &mut self,
        _sender: ProcessId,
        _recipient: ProcessId,
        _view: &AdversaryView<'_>,
    ) -> bool {
        false
    }
}

/// The trivial adversary: corrupts nobody.
///
/// Useful as the fault-free baseline in tests and benches.
///
/// # Examples
///
/// ```
/// use sg_sim::{Adversary, NoFaults, ProcessId};
///
/// let mut a = NoFaults;
/// assert!(a.corrupt(7, 2, ProcessId(0)).is_empty());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl Adversary for NoFaults {
    fn name(&self) -> String {
        "no-faults".to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        static NAME: std::sync::OnceLock<Arc<str>> = std::sync::OnceLock::new();
        NAME.get_or_init(|| Arc::from("no-faults")).clone()
    }

    fn reseed(&mut self, _seed: u64) -> bool {
        // Stateless: any instance is already "fresh" for any seed.
        true
    }

    fn corrupt(&mut self, n: usize, _t: usize, _source: ProcessId) -> ProcessSet {
        ProcessSet::new(n)
    }

    fn payload(
        &mut self,
        _sender: ProcessId,
        _recipient: ProcessId,
        _view: &AdversaryView<'_>,
    ) -> Payload {
        Payload::Missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_corrupts_nobody() {
        let mut a = NoFaults;
        let f = a.corrupt(5, 1, ProcessId(0));
        assert!(f.is_empty());
        assert_eq!(a.name(), "no-faults");
    }

    #[test]
    #[should_panic(expected = "only sign as faulty")]
    fn sign_as_honest_rejected() {
        let faulty = ProcessSet::new(4);
        let view = AdversaryView {
            round: 1,
            total_rounds: 3,
            n: 4,
            t: 1,
            source: ProcessId(0),
            source_value: Value(1),
            domain: ValueDomain::binary(),
            faulty: &faulty,
            honest_broadcast: &[],
            shadow_broadcast: &[],
            sigs: None,
        };
        let _ = view.sign_as(ProcessId(1), Value(0));
    }
}
