//! Append-only, content-addressed cell result store: `sg-journal/1`.
//!
//! A journal is a directory of NDJSON segment files plus an in-memory
//! index. Every line is one immutable *fact* — the full wire encoding of
//! a completed sweep cell, addressed by a caller-computed
//! ([`CellKey`], [`EngineEpoch`]) pair:
//!
//! ```text
//! {"schema":"sg-journal/1","key":"f3a401c2899d6b10","epoch":"41c2…","cell":{…}}
//! ```
//!
//! * [`CellKey`] is an FNV fingerprint over the cell *coordinate* — the
//!   canonical wire form of everything that determines the cell's bytes
//!   (spec, `n`, `t`, family encoding, first seed, samples per cell).
//!   The journal itself never interprets it; key derivation lives with
//!   the wire codecs in `sg_analysis`.
//! * [`EngineEpoch`] fingerprints the *execution environment*: the
//!   engine fast-path toggle set and a compiled-in engine version tag.
//!   Any engine change moves the epoch, so stale entries are simply
//!   never looked up again (and [`Journal::compact`] drops them).
//!
//! # "Absent, never wrong"
//!
//! The store follows the instance-pool cache discipline: every doubt is
//! a *miss*. A truncated final line (crash mid-append), a bit-flipped
//! byte, an unknown schema, a missing field — each skips that line,
//! records a structured warning ([`Journal::warnings`]), and leaves the
//! journal fully usable. Nothing in this crate can turn disk corruption
//! into a wrong cell; at worst a cell is recomputed.
//!
//! # Concurrency
//!
//! One writer at a time: [`Journal::open`] takes a `LOCK` file
//! containing the owner's pid and refuses to open while a live process
//! holds it (a lock whose pid no longer exists is stale and is stolen).
//! The lock is released on drop.
//!
//! # Bounding the store
//!
//! Appends never rewrite history, so re-running sweeps accumulates
//! superseded duplicates and dead epochs. [`Journal::compact`] rewrites
//! the live index — one line per (key, epoch), newest wins — into a
//! single fresh segment and deletes the rest.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use serde::json::Value as Json;

/// The on-disk schema identifier carried by every journal line.
pub const SCHEMA: &str = "sg-journal/1";

/// Content address of one sweep cell: an FNV fingerprint of the cell's
/// canonical coordinate wire form. Computed by the caller (the journal
/// stores it opaquely), displayed as 16 hex digits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CellKey(pub u64);

/// Fingerprint of the engine configuration a cell was computed under
/// (fast-path toggles + compiled-in version tag). Entries are only ever
/// served back under the exact epoch that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EngineEpoch(pub u64);

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for EngineEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Anything that can go wrong opening or writing a journal. Read-side
/// trouble is deliberately *not* here: corrupt lines degrade to misses
/// and warnings, never to errors.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure (directory creation, segment write, …).
    Io(io::Error),
    /// Another live process holds the journal's writer lock.
    Locked {
        /// The journal directory.
        dir: PathBuf,
        /// Contents of the `LOCK` file (the holder's pid).
        holder: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o: {e}"),
            JournalError::Locked { dir, holder } => write!(
                f,
                "journal {} is locked by live process {holder}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Point-in-time shape of a journal, from [`Journal::stat`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JournalStats {
    /// Segment files on disk.
    pub segments: usize,
    /// Live (key, epoch) entries in the index.
    pub entries: usize,
    /// Distinct engine epochs among the live entries.
    pub epochs: usize,
    /// Lines superseded by a later append of the same (key, epoch).
    pub superseded: usize,
    /// Lines skipped as corrupt/foreign while loading (see
    /// [`Journal::warnings`]).
    pub corrupt_lines: usize,
    /// Total bytes across all segment files.
    pub bytes: u64,
}

/// Outcome of [`Journal::compact`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompactionReport {
    /// Segment files deleted.
    pub segments_removed: usize,
    /// Live entries rewritten into the fresh segment.
    pub entries_kept: usize,
    /// Superseded + corrupt lines that did not survive.
    pub lines_dropped: usize,
}

/// An open journal: in-memory index over the directory's segments, plus
/// an exclusive append handle. See the module docs for the format.
pub struct Journal {
    dir: PathBuf,
    index: HashMap<(CellKey, EngineEpoch), Json>,
    /// Lazily-opened append handle; a fresh segment per open.
    segment: Option<File>,
    next_segment: u64,
    warnings: Vec<String>,
    superseded: usize,
    corrupt_lines: usize,
    /// Set once the lock file is ours, so drop knows to remove it.
    locked: bool,
}

impl Journal {
    /// Opens (creating if necessary) the journal at `dir`, loads every
    /// segment into the index, and takes the writer lock.
    ///
    /// # Errors
    ///
    /// [`JournalError::Locked`] if a live process holds the lock;
    /// [`JournalError::Io`] on filesystem failure. Corrupt *lines* are
    /// not errors — they become warnings and misses.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut journal = Journal {
            dir,
            index: HashMap::new(),
            segment: None,
            next_segment: 0,
            warnings: Vec::new(),
            superseded: 0,
            corrupt_lines: 0,
            locked: false,
        };
        journal.acquire_lock()?;
        for path in journal.segment_paths()? {
            journal.load_segment(&path)?;
        }
        Ok(journal)
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up the cell stored under exactly (`key`, `epoch`).
    pub fn get(&self, key: CellKey, epoch: EngineEpoch) -> Option<&Json> {
        self.index.get(&(key, epoch))
    }

    /// Live entries in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Appends one cell fact and indexes it. Within a process the write
    /// is durable-ordered (line + flush) before the index update, so a
    /// crash can lose at most the line being written — which the next
    /// open degrades to a miss.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the segment cannot be written.
    pub fn append(
        &mut self,
        key: CellKey,
        epoch: EngineEpoch,
        cell: &Json,
    ) -> Result<(), JournalError> {
        if self.segment.is_none() {
            let path = self.dir.join(segment_name(self.next_segment));
            self.next_segment += 1;
            self.segment = Some(OpenOptions::new().create(true).append(true).open(path)?);
        }
        let file = self.segment.as_mut().expect("segment just opened");
        writeln!(file, "{}", fact_line(key, epoch, cell))?;
        file.flush()?;
        if self.index.insert((key, epoch), cell.clone()).is_some() {
            self.superseded += 1;
        }
        Ok(())
    }

    /// Structured warnings accumulated while loading (one per skipped
    /// line, with segment file, line number, and reason).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Current shape of the store.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the directory cannot be listed.
    pub fn stat(&self) -> Result<JournalStats, JournalError> {
        let paths = self.segment_paths()?;
        let mut bytes = 0;
        for p in &paths {
            bytes += fs::metadata(p)?.len();
        }
        let mut epochs: Vec<EngineEpoch> = self.index.keys().map(|(_, e)| *e).collect();
        epochs.sort_unstable();
        epochs.dedup();
        Ok(JournalStats {
            segments: paths.len(),
            entries: self.index.len(),
            epochs: epochs.len(),
            superseded: self.superseded,
            corrupt_lines: self.corrupt_lines,
            bytes,
        })
    }

    /// Rewrites the live index — newest line per (key, epoch), in
    /// deterministic key order — into one fresh segment and deletes
    /// every older segment, dropping superseded and corrupt lines.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure. The fresh segment is
    /// fully written before any old segment is removed, so a crash
    /// mid-compaction leaves (at worst) duplicates, never data loss.
    pub fn compact(&mut self) -> Result<CompactionReport, JournalError> {
        let old = self.segment_paths()?;
        let dropped = self.superseded + self.corrupt_lines;
        self.segment = None; // close the append handle before the rewrite
        let path = self.dir.join(segment_name(self.next_segment));
        self.next_segment += 1;
        let mut entries: Vec<(&(CellKey, EngineEpoch), &Json)> = self.index.iter().collect();
        entries.sort_by_key(|(coords, _)| **coords);
        let mut file = File::create(&path)?;
        for (&(key, epoch), cell) in entries {
            writeln!(file, "{}", fact_line(key, epoch, cell))?;
        }
        file.sync_all()?;
        for p in &old {
            fs::remove_file(p)?;
        }
        self.superseded = 0;
        self.corrupt_lines = 0;
        Ok(CompactionReport {
            segments_removed: old.len(),
            entries_kept: self.index.len(),
            lines_dropped: dropped,
        })
    }

    /// Sorted segment paths; also advances `next_segment` past them.
    fn segment_paths(&self) -> Result<Vec<PathBuf>, JournalError> {
        let mut paths = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                if name.starts_with("segment-") && name.ends_with(".ndjson") {
                    paths.push(path);
                }
            }
        }
        paths.sort();
        Ok(paths)
    }

    fn load_segment(&mut self, path: &Path) -> Result<(), JournalError> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("segment")
            .to_string();
        if let Some(seq) = name
            .strip_prefix("segment-")
            .and_then(|s| s.strip_suffix(".ndjson"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            self.next_segment = self.next_segment.max(seq + 1);
        }
        let reader = BufReader::new(File::open(path)?);
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse_fact(&line) {
                Ok((key, epoch, cell)) => {
                    if self.index.insert((key, epoch), cell).is_some() {
                        self.superseded += 1;
                    }
                }
                Err(reason) => {
                    self.corrupt_lines += 1;
                    self.warnings.push(format!(
                        "journal: {name}:{}: {reason} — treating as a miss",
                        lineno + 1
                    ));
                }
            }
        }
        Ok(())
    }

    /// Takes the `LOCK` file. A lock naming a pid that is no longer
    /// alive (crashed writer) is stale and is stolen; a live holder is
    /// a hard error.
    fn acquire_lock(&mut self) -> Result<(), JournalError> {
        let path = self.lock_path();
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    write!(file, "{}", std::process::id())?;
                    self.locked = true;
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path).unwrap_or_default();
                    if holder_is_live(holder.trim()) {
                        return Err(JournalError::Locked {
                            dir: self.dir.clone(),
                            holder: holder.trim().to_string(),
                        });
                    }
                    // Stale lock from a dead writer: steal it and retry
                    // the create_new (once — two stale rounds means the
                    // filesystem is lying to us).
                    fs::remove_file(&path)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(JournalError::Io(io::Error::other(
            "could not take the journal lock after clearing a stale one",
        )))
    }

    fn lock_path(&self) -> PathBuf {
        self.dir.join("LOCK")
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        if self.locked {
            fs::remove_file(self.lock_path()).ok();
        }
    }
}

/// Whether the pid in a `LOCK` file names a live process. An
/// unparseable pid counts as dead (the lock is garbage either way).
fn holder_is_live(holder: &str) -> bool {
    let Ok(pid) = holder.parse::<u32>() else {
        return false;
    };
    if pid == std::process::id() {
        // Our own pid in a pre-existing lock means a previous journal in
        // this process leaked it; that journal is gone, the lock is not
        // protecting anything.
        return false;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new("/proc").join(pid.to_string()).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        // Without a portable liveness probe, assume the holder is live:
        // refusing to open is the safe failure.
        true
    }
}

/// Segment file name for sequence number `seq`; zero-padded so a plain
/// lexicographic sort is load order.
fn segment_name(seq: u64) -> String {
    format!("segment-{seq:06}.ndjson")
}

/// One NDJSON fact line.
fn fact_line(key: CellKey, epoch: EngineEpoch, cell: &Json) -> String {
    Json::Obj(vec![
        ("schema".to_string(), Json::from(SCHEMA)),
        ("key".to_string(), Json::from(key.to_string().as_str())),
        ("epoch".to_string(), Json::from(epoch.to_string().as_str())),
        ("cell".to_string(), cell.clone()),
    ])
    .to_string()
}

/// Decodes one fact line; any deviation is a reason string (→ warning +
/// miss), never a panic.
fn parse_fact(line: &str) -> Result<(CellKey, EngineEpoch, Json), String> {
    let doc = Json::parse(line).map_err(|e| format!("unparseable line ({e})"))?;
    let schema = doc
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing 'schema'")?;
    if schema != SCHEMA {
        return Err(format!(
            "foreign schema '{schema}' (this store is {SCHEMA})"
        ));
    }
    let hex = |field: &str| -> Result<u64, String> {
        let text = doc
            .get(field)
            .and_then(|v| v.as_str())
            .ok_or(format!("missing '{field}'"))?;
        u64::from_str_radix(text, 16).map_err(|_| format!("'{field}' is not a hex fingerprint"))
    };
    let key = CellKey(hex("key")?);
    let epoch = EngineEpoch(hex("epoch")?);
    let cell = doc.get("cell").ok_or("missing 'cell'")?;
    Ok((key, epoch, cell.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sg-journal-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cell(v: u64) -> Json {
        Json::Obj(vec![("v".to_string(), Json::from(v))])
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = tmpdir("round-trip");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.append(CellKey(1), EngineEpoch(7), &cell(10)).unwrap();
            j.append(CellKey(2), EngineEpoch(7), &cell(20)).unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(CellKey(1), EngineEpoch(7)), Some(&cell(10)));
        assert_eq!(j.get(CellKey(2), EngineEpoch(7)), Some(&cell(20)));
        assert_eq!(
            j.get(CellKey(1), EngineEpoch(8)),
            None,
            "epoch is part of the address"
        );
        assert!(j.warnings().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lines_become_warnings_not_errors() {
        let dir = tmpdir("corrupt");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.append(CellKey(1), EngineEpoch(7), &cell(10)).unwrap();
        }
        // Simulate a crash mid-append plus assorted damage.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "ndjson"))
            .unwrap();
        let mut text = fs::read_to_string(&seg).unwrap();
        text.push_str("{\"schema\":\"sg-journal/1\",\"key\":\"00000000000000\n");
        text.push_str(
            "{\"schema\":\"sg-journal/9\",\"key\":\"02\",\"epoch\":\"07\",\"cell\":{}}\n",
        );
        text.push_str(
            "{\"schema\":\"sg-journal/1\",\"key\":\"zz\",\"epoch\":\"07\",\"cell\":{}}\n",
        );
        fs::write(&seg, text).unwrap();
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 1, "the intact line survives");
        assert_eq!(j.warnings().len(), 3, "{:?}", j.warnings());
        assert_eq!(j.stat().unwrap().corrupt_lines, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_rewrites_to_one_segment() {
        let dir = tmpdir("compact");
        for round in 0..3u64 {
            let mut j = Journal::open(&dir).unwrap();
            // Same keys every round: rounds 1–2 are pure supersessions.
            j.append(CellKey(1), EngineEpoch(7), &cell(round)).unwrap();
            j.append(CellKey(2), EngineEpoch(7), &cell(round)).unwrap();
        }
        let mut j = Journal::open(&dir).unwrap();
        assert_eq!(j.stat().unwrap().segments, 3);
        assert_eq!(j.stat().unwrap().superseded, 4);
        let report = j.compact().unwrap();
        assert_eq!(report.segments_removed, 3);
        assert_eq!(report.entries_kept, 2);
        assert_eq!(report.lines_dropped, 4);
        let stats = j.stat().unwrap();
        assert_eq!((stats.segments, stats.entries), (1, 2));
        assert_eq!(
            j.get(CellKey(1), EngineEpoch(7)),
            Some(&cell(2)),
            "newest wins"
        );
        drop(j);
        // The compacted store reloads identically.
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.warnings().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_lock_excludes_live_holders_and_steals_stale_ones() {
        let dir = tmpdir("lock");
        fs::create_dir_all(&dir).unwrap();
        // A live holder (pid 1 is always alive on linux) excludes us.
        fs::write(dir.join("LOCK"), "1").unwrap();
        assert!(matches!(
            Journal::open(&dir),
            Err(JournalError::Locked { .. })
        ));
        // A dead holder's lock is stolen.
        fs::write(dir.join("LOCK"), "999999999").unwrap();
        let j = Journal::open(&dir).unwrap();
        drop(j);
        assert!(!dir.join("LOCK").exists(), "drop releases the lock");
        fs::remove_dir_all(&dir).unwrap();
    }
}
