//! The standard adversary gauntlet.
//!
//! A curated collection of strategies covering the qualitatively distinct
//! Byzantine behaviours: crash/omission, random lies, consistent
//! equivocation, stealthy sub-threshold corruption, split-brain
//! coordination, and the slow one-fault-per-block reveal that forces
//! worst-case round counts. Integration tests and the adversary-gauntlet
//! example run every algorithm against this suite.

use sg_sim::Adversary;

use crate::selection::FaultSelection;
use crate::strategies::{
    Adaptive, ChainRevealer, Collusion, Crash, DoubleTalk, Equivocate, EquivocatingSource,
    FrontierBreaker, Omission, Partition, RandomLiar, Replay, Silent, StaggeredSplit, Stealth,
    TwoFaced,
};

/// Builds the standard gauntlet, seeded deterministically.
///
/// Includes source-faulty and source-correct variants of each strategy
/// where both make sense. Every adversary corrupts at most `t`
/// processors, so all algorithm guarantees must hold against all of them.
pub fn standard_suite(seed: u64) -> Vec<Box<dyn Adversary>> {
    vec![
        Box::new(Silent::new(FaultSelection::without_source())),
        Box::new(Silent::new(FaultSelection::with_source())),
        Box::new(Crash::new(FaultSelection::without_source(), 2)),
        Box::new(Crash::new(FaultSelection::with_source(), 3)),
        Box::new(RandomLiar::new(FaultSelection::without_source(), seed)),
        Box::new(RandomLiar::new(FaultSelection::with_source(), seed ^ 1)),
        Box::new(TwoFaced::new(FaultSelection::without_source())),
        Box::new(TwoFaced::new(FaultSelection::with_source())),
        Box::new(EquivocatingSource::new(FaultSelection::with_source())),
        Box::new(EquivocatingSource::new(
            FaultSelection::with_source().limit(1),
        )),
        Box::new(Stealth::new(FaultSelection::without_source())),
        Box::new(Stealth::new(FaultSelection::with_source())),
        Box::new(DoubleTalk::new(FaultSelection::without_source())),
        Box::new(DoubleTalk::new(FaultSelection::with_source())),
        Box::new(ChainRevealer::new(
            FaultSelection::without_source(),
            2,
            3,
            seed ^ 2,
        )),
        Box::new(ChainRevealer::new(
            FaultSelection::with_source(),
            2,
            2,
            seed ^ 3,
        )),
        Box::new(Collusion::new(FaultSelection::without_source())),
        Box::new(Collusion::new(FaultSelection::with_source())),
        Box::new(Replay::new(FaultSelection::without_source())),
        Box::new(Replay::new(FaultSelection::with_source())),
        Box::new(FrontierBreaker::new(FaultSelection::with_source())),
        Box::new(FrontierBreaker::new(FaultSelection::without_source())),
        Box::new(StaggeredSplit::new(FaultSelection::with_source(), 2, 2)),
        Box::new(StaggeredSplit::new(FaultSelection::with_source(), 3, 3)),
        // The isolated-group partition: every cut edge is incident to the
        // single corrupted processor, so the honest network stays intact
        // and all guarantees must still hold.
        Box::new(Partition::new(
            FaultSelection::with_source().limit(1),
            1,
            2,
            3,
        )),
        Box::new(Omission::new(FaultSelection::without_source(), 2, 0)),
        Box::new(Omission::new(FaultSelection::with_source(), 3, 1)),
        Box::new(Equivocate::new(FaultSelection::without_source(), 3, 2)),
        Box::new(Equivocate::new(FaultSelection::with_source(), 2, 1)),
        Box::new(Adaptive::new(FaultSelection::without_source(), vec![2, 4])),
        Box::new(Adaptive::new(FaultSelection::with_source(), vec![1, 3])),
    ]
}

/// A smaller, faster suite for exponential-size algorithms and property
/// tests.
pub fn quick_suite(seed: u64) -> Vec<Box<dyn Adversary>> {
    vec![
        Box::new(Crash::new(FaultSelection::without_source(), 2)),
        Box::new(RandomLiar::new(FaultSelection::with_source(), seed)),
        Box::new(TwoFaced::new(FaultSelection::without_source())),
        Box::new(EquivocatingSource::new(FaultSelection::with_source())),
        Box::new(DoubleTalk::new(FaultSelection::with_source())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_nonempty_and_named() {
        for adv in standard_suite(1).iter().chain(quick_suite(1).iter()) {
            assert!(!adv.name().is_empty());
        }
        assert!(standard_suite(1).len() >= 12);
        assert!(quick_suite(1).len() >= 4);
    }
}
