//! Recordable, replayable adversary scenarios.
//!
//! The engine drives any [`Adversary`] through a deterministic call
//! sequence — one [`Adversary::corrupt`] before round 1, then one
//! [`Adversary::payload`] per (faulty sender, recipient ≠ sender) pair
//! per round in ascending order, plus (for strategies with
//! [`Adversary::has_edge_faults`]) one [`Adversary::edge_cut`] per
//! honest edge per round. A run's faulty behaviour is therefore fully
//! determined by the answers to those calls, and that answer sequence is
//! a finite, serializable artifact: an [`AdversaryTrace`].
//!
//! * [`RecordingAdversary`] wraps any strategy and captures the trace
//!   while the wrapped strategy plays — the recorded run is bit-identical
//!   to an unrecorded one (the wrapper forwards every call unchanged).
//! * [`ReplayAdversary`] executes a trace against the engine, answering
//!   each call from the recorded steps. Because the engine's call order
//!   is deterministic and every honest processor is a deterministic
//!   function of delivered payloads, a replayed run reproduces the
//!   recorded run bit-exactly — same decisions, same metrics, same
//!   fingerprint contribution.
//! * The JSON codec (schema `sg-trace/1`) makes traces wire-portable:
//!   they travel the `sg-serve/1` protocol as a named family and live in
//!   the committed counterexample corpus under `tests/corpus/`.
//!
//! Replay never panics on a damaged trace: any divergence between the
//! engine's calls and the recorded steps (truncation, edits, a different
//! `(n, t)`) latches a structured [`TraceError`], visible through
//! [`ReplayAdversary::verify`] after the run, and the replayer answers
//! the remaining calls with missing payloads.

use std::fmt;
use std::sync::Arc;

use serde::json::{JsonError, Value as Json};
use serde::{FromJson, ToJson};
use sg_sim::{Adversary, AdversaryView, Payload, ProcessId, ProcessSet, Value};

/// Schema tag for the serialized trace form.
pub const TRACE_SCHEMA: &str = "sg-trace/1";

/// One recorded faulty payload: what `sender` sent `recipient` in
/// `round`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// 1-based round of the call.
    pub round: usize,
    /// Faulty sender.
    pub sender: ProcessId,
    /// Recipient of this payload.
    pub recipient: ProcessId,
    /// The payload sent.
    pub payload: TracePayload,
}

/// One recorded honest-edge cut: the broadcast from (honest) `sender`
/// to `recipient` was dropped in `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCut {
    /// 1-based round of the cut.
    pub round: usize,
    /// Honest sender whose broadcast was dropped.
    pub sender: ProcessId,
    /// Recipient that did not receive it.
    pub recipient: ProcessId,
}

/// A recorded payload, in the value-vector normal form.
///
/// Payload equality in the engine is semantic (bit-packed and vector
/// payloads compare equal value-for-value), so recording every payload
/// as its value vector loses nothing: a replayed [`TracePayload`]
/// produces the same protocol behaviour and the same metrics as the
/// original representation. Signed relay payloads have no value-vector
/// form — recording one is a structured error, never a silent loss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TracePayload {
    /// No message (the recipient sees a missing payload).
    Missing,
    /// A vector of raw values (out-of-domain values included — garbage
    /// payloads replay exactly).
    Values(Vec<u16>),
}

impl TracePayload {
    /// Normalizes an engine payload for recording, or `None` for the
    /// unrecordable signed-relay representation.
    fn of(payload: &Payload) -> Option<TracePayload> {
        match payload {
            Payload::Missing => Some(TracePayload::Missing),
            Payload::Signed(_) => None,
            p => Some(TracePayload::Values(
                (0..p.num_values())
                    .map(|i| p.value_at(i).expect("index in range").raw())
                    .collect(),
            )),
        }
    }

    /// Materializes the recorded payload for replay.
    fn to_payload(&self) -> Payload {
        match self {
            TracePayload::Missing => Payload::Missing,
            TracePayload::Values(vals) => Payload::values(vals.iter().map(|&raw| Value(raw))),
        }
    }
}

/// A complete record of one run's faulty behaviour: the corrupted set
/// plus every per-round, per-edge fault action.
///
/// Build one with [`RecordingAdversary`], execute one with
/// [`ReplayAdversary`], serialize with the [`ToJson`]/[`FromJson`]
/// impls (schema [`TRACE_SCHEMA`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversaryTrace {
    /// Name of the strategy that produced the trace (informational).
    pub family: String,
    /// System size the trace was recorded at.
    pub n: usize,
    /// Fault bound the trace was recorded at.
    pub t: usize,
    /// The corrupted set, ascending.
    pub faulty: Vec<ProcessId>,
    /// Faulty payloads, in the engine's call order.
    pub steps: Vec<TraceStep>,
    /// Honest-edge cuts (empty unless the recorded strategy had
    /// [`Adversary::has_edge_faults`]).
    pub cuts: Vec<TraceCut>,
}

/// Structured failure of recording, validation, or replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The recorded strategy sent a payload with no value-vector normal
    /// form (a signed relay), so the trace would not replay faithfully.
    Unrecordable {
        /// Round of the unrecordable call.
        round: usize,
        /// Faulty sender of the unrecordable payload.
        sender: ProcessId,
        /// Recipient of the unrecordable payload.
        recipient: ProcessId,
    },
    /// The trace is internally inconsistent (out-of-range ids, a step
    /// from an uncorrupted sender, a zero round).
    Malformed(String),
    /// Replay diverged from the recorded call sequence (truncated or
    /// edited trace, or a run configuration that does not match).
    Desync(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Unrecordable {
                round,
                sender,
                recipient,
            } => write!(
                f,
                "unrecordable signed payload at round {round}, {} -> {}",
                sender.index(),
                recipient.index()
            ),
            TraceError::Malformed(detail) => write!(f, "malformed trace: {detail}"),
            TraceError::Desync(detail) => write!(f, "replay desync: {detail}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl AdversaryTrace {
    /// Validates internal consistency: ids in range, steps from
    /// corrupted senders only, rounds 1-based.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] on the first inconsistency.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.n == 0 {
            return Err(TraceError::Malformed("n must be positive".into()));
        }
        for p in &self.faulty {
            if p.index() >= self.n {
                return Err(TraceError::Malformed(format!(
                    "faulty processor {} out of range for n={}",
                    p.index(),
                    self.n
                )));
            }
        }
        for (i, step) in self.steps.iter().enumerate() {
            if step.round == 0 {
                return Err(TraceError::Malformed(format!("step {i}: round 0")));
            }
            if step.sender.index() >= self.n || step.recipient.index() >= self.n {
                return Err(TraceError::Malformed(format!(
                    "step {i}: processor id out of range for n={}",
                    self.n
                )));
            }
            if !self.faulty.contains(&step.sender) {
                return Err(TraceError::Malformed(format!(
                    "step {i}: sender {} is not in the corrupted set",
                    step.sender.index()
                )));
            }
        }
        for (i, cut) in self.cuts.iter().enumerate() {
            if cut.round == 0 {
                return Err(TraceError::Malformed(format!("cut {i}: round 0")));
            }
            if cut.sender.index() >= self.n || cut.recipient.index() >= self.n {
                return Err(TraceError::Malformed(format!(
                    "cut {i}: processor id out of range for n={}",
                    self.n
                )));
            }
        }
        Ok(())
    }
}

impl ToJson for AdversaryTrace {
    fn to_json(&self) -> Json {
        let steps = self
            .steps
            .iter()
            .map(|s| {
                let payload = match &s.payload {
                    TracePayload::Missing => Json::Null,
                    TracePayload::Values(vals) => Json::Arr(
                        vals.iter()
                            .map(|&raw| Json::from(usize::from(raw)))
                            .collect(),
                    ),
                };
                Json::Arr(vec![
                    Json::from(s.round),
                    Json::from(s.sender.index()),
                    Json::from(s.recipient.index()),
                    payload,
                ])
            })
            .collect();
        let cuts = self
            .cuts
            .iter()
            .map(|c| {
                Json::Arr(vec![
                    Json::from(c.round),
                    Json::from(c.sender.index()),
                    Json::from(c.recipient.index()),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::from(TRACE_SCHEMA)),
            ("family".into(), Json::from(self.family.as_str())),
            ("n".into(), Json::from(self.n)),
            ("t".into(), Json::from(self.t)),
            (
                "faulty".into(),
                Json::Arr(self.faulty.iter().map(|p| Json::from(p.index())).collect()),
            ),
            ("steps".into(), Json::Arr(steps)),
            ("cuts".into(), Json::Arr(cuts)),
        ])
    }
}

impl FromJson for AdversaryTrace {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema = v
            .need("schema")?
            .as_str()
            .ok_or_else(|| JsonError::msg("trace schema must be a string"))?;
        if schema != TRACE_SCHEMA {
            return Err(JsonError::msg(format!(
                "unsupported trace schema {schema:?} (want {TRACE_SCHEMA:?})"
            )));
        }
        let family = v
            .need("family")?
            .as_str()
            .ok_or_else(|| JsonError::msg("trace family must be a string"))?
            .to_string();
        let n = v
            .need("n")?
            .as_usize()
            .ok_or_else(|| JsonError::msg("trace n must be an integer"))?;
        let t = v
            .need("t")?
            .as_usize()
            .ok_or_else(|| JsonError::msg("trace t must be an integer"))?;
        let faulty = v
            .need("faulty")?
            .as_arr()
            .ok_or_else(|| JsonError::msg("trace faulty must be an array"))?
            .iter()
            .map(|e| {
                e.as_usize()
                    .map(ProcessId)
                    .ok_or_else(|| JsonError::msg("faulty entries must be integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let steps = v
            .need("steps")?
            .as_arr()
            .ok_or_else(|| JsonError::msg("trace steps must be an array"))?
            .iter()
            .map(step_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let cuts = match v.get("cuts") {
            None => Vec::new(),
            Some(c) => c
                .as_arr()
                .ok_or_else(|| JsonError::msg("trace cuts must be an array"))?
                .iter()
                .map(cut_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(AdversaryTrace {
            family,
            n,
            t,
            faulty,
            steps,
            cuts,
        })
    }
}

fn step_from_json(v: &Json) -> Result<TraceStep, JsonError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| JsonError::msg("trace step must be an array"))?;
    if arr.len() != 4 {
        return Err(JsonError::msg(
            "trace step must be [round, sender, recipient, payload]",
        ));
    }
    let coord = |i: usize, what: &str| {
        arr[i]
            .as_usize()
            .ok_or_else(|| JsonError::msg(format!("trace step {what} must be an integer")))
    };
    let payload = match &arr[3] {
        Json::Null => TracePayload::Missing,
        Json::Arr(vals) => TracePayload::Values(
            vals.iter()
                .map(|e| {
                    e.as_usize()
                        .and_then(|raw| u16::try_from(raw).ok())
                        .ok_or_else(|| JsonError::msg("trace payload values must fit u16"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        ),
        _ => {
            return Err(JsonError::msg(
                "trace step payload must be null or an array",
            ))
        }
    };
    Ok(TraceStep {
        round: coord(0, "round")?,
        sender: ProcessId(coord(1, "sender")?),
        recipient: ProcessId(coord(2, "recipient")?),
        payload,
    })
}

fn cut_from_json(v: &Json) -> Result<TraceCut, JsonError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| JsonError::msg("trace cut must be an array"))?;
    if arr.len() != 3 {
        return Err(JsonError::msg(
            "trace cut must be [round, sender, recipient]",
        ));
    }
    let coord = |i: usize, what: &str| {
        arr[i]
            .as_usize()
            .ok_or_else(|| JsonError::msg(format!("trace cut {what} must be an integer")))
    };
    Ok(TraceCut {
        round: coord(0, "round")?,
        sender: ProcessId(coord(1, "sender")?),
        recipient: ProcessId(coord(2, "recipient")?),
    })
}

/// Wraps any strategy and records the [`AdversaryTrace`] of the run it
/// plays, forwarding every call unchanged — a recorded run is
/// bit-identical to an unrecorded one.
///
/// Strictly opt-in: the default sweep loop never constructs one, so
/// recording costs the hot path nothing.
pub struct RecordingAdversary {
    inner: Box<dyn Adversary>,
    n: usize,
    t: usize,
    faulty: Vec<ProcessId>,
    steps: Vec<TraceStep>,
    cuts: Vec<TraceCut>,
    lossy: Option<TraceError>,
}

impl RecordingAdversary {
    /// Wraps `inner`, recording from the next [`Adversary::corrupt`] on.
    pub fn new(inner: Box<dyn Adversary>) -> Self {
        RecordingAdversary {
            inner,
            n: 0,
            t: 0,
            faulty: Vec::new(),
            steps: Vec::new(),
            cuts: Vec::new(),
            lossy: None,
        }
    }

    /// Consumes the recorder and returns the trace of the last run.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Unrecordable`] if the wrapped strategy sent
    /// a signed-relay payload (no value-vector normal form — the trace
    /// would not replay faithfully).
    pub fn finish(self) -> Result<AdversaryTrace, TraceError> {
        if let Some(err) = self.lossy {
            return Err(err);
        }
        Ok(AdversaryTrace {
            family: self.inner.name(),
            n: self.n,
            t: self.t,
            faulty: self.faulty,
            steps: self.steps,
            cuts: self.cuts,
        })
    }
}

impl Adversary for RecordingAdversary {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn name_shared(&self) -> Arc<str> {
        self.inner.name_shared()
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        let set = self.inner.corrupt(n, t, source);
        self.n = n;
        self.t = t;
        self.faulty = set.iter().collect();
        self.steps.clear();
        self.cuts.clear();
        self.lossy = None;
        set
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let payload = self.inner.payload(sender, recipient, view);
        match TracePayload::of(&payload) {
            Some(recorded) => self.steps.push(TraceStep {
                round: view.round,
                sender,
                recipient,
                payload: recorded,
            }),
            None => {
                if self.lossy.is_none() {
                    self.lossy = Some(TraceError::Unrecordable {
                        round: view.round,
                        sender,
                        recipient,
                    });
                }
            }
        }
        payload
    }

    fn has_edge_faults(&self) -> bool {
        self.inner.has_edge_faults()
    }

    fn edge_cut(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> bool {
        let cut = self.inner.edge_cut(sender, recipient, view);
        if cut {
            self.cuts.push(TraceCut {
                round: view.round,
                sender,
                recipient,
            });
        }
        cut
    }
}

/// Executes an [`AdversaryTrace`] against the engine, answering every
/// adversary call from the recorded steps.
///
/// The engine's call sequence is deterministic, so a faithful trace
/// replays its recorded run bit-exactly. A damaged trace never panics:
/// the first divergence latches a [`TraceError::Desync`] (the replayer
/// answers the rest of the run with missing payloads) and
/// [`ReplayAdversary::verify`] reports it after the run.
pub struct ReplayAdversary {
    trace: Arc<AdversaryTrace>,
    cursor: usize,
    /// Sorted (round, sender, recipient) index over `trace.cuts` for
    /// O(log c) membership tests from the delivery loop.
    cut_index: Vec<(usize, usize, usize)>,
    error: Option<TraceError>,
    name: Arc<str>,
}

impl ReplayAdversary {
    /// A replayer for `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] if the trace fails
    /// [`AdversaryTrace::validate`].
    pub fn new(trace: Arc<AdversaryTrace>) -> Result<Self, TraceError> {
        trace.validate()?;
        let mut cut_index: Vec<_> = trace
            .cuts
            .iter()
            .map(|c| (c.round, c.sender.index(), c.recipient.index()))
            .collect();
        cut_index.sort_unstable();
        cut_index.dedup();
        let name = Arc::from(format!("replay({})", trace.family).as_str());
        Ok(ReplayAdversary {
            trace,
            cursor: 0,
            cut_index,
            error: None,
            name,
        })
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &AdversaryTrace {
        &self.trace
    }

    /// Whether the finished run consumed the trace exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Desync`] if any call diverged from the
    /// recorded sequence or recorded steps were left unconsumed.
    pub fn verify(&self) -> Result<(), TraceError> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        if self.cursor != self.trace.steps.len() {
            return Err(TraceError::Desync(format!(
                "run ended after {} of {} recorded steps",
                self.cursor,
                self.trace.steps.len()
            )));
        }
        Ok(())
    }

    fn desync(&mut self, detail: String) {
        if self.error.is_none() {
            self.error = Some(TraceError::Desync(detail));
        }
    }
}

impl Adversary for ReplayAdversary {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        self.name.clone()
    }

    fn reseed(&mut self, _seed: u64) -> bool {
        // The trace is immutable shared state; a fresh replayer for the
        // same trace differs only in cursor position.
        self.cursor = 0;
        self.error = None;
        true
    }

    fn corrupt(&mut self, n: usize, t: usize, _source: ProcessId) -> ProcessSet {
        self.cursor = 0;
        self.error = None;
        if n != self.trace.n {
            self.desync(format!(
                "run has n={n} but the trace was recorded at n={}",
                self.trace.n
            ));
            return ProcessSet::new(n);
        }
        if t != self.trace.t {
            self.desync(format!(
                "run has t={t} but the trace was recorded at t={}",
                self.trace.t
            ));
        }
        ProcessSet::from_members(n, self.trace.faulty.iter().copied())
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        if self.error.is_some() {
            return Payload::Missing;
        }
        let Some(step) = self.trace.steps.get(self.cursor) else {
            self.desync(format!(
                "trace exhausted at round {}, call {} -> {}",
                view.round,
                sender.index(),
                recipient.index()
            ));
            return Payload::Missing;
        };
        if step.round != view.round || step.sender != sender || step.recipient != recipient {
            self.desync(format!(
                "recorded step {} is (round {}, {} -> {}) but the engine asked for \
                 (round {}, {} -> {})",
                self.cursor,
                step.round,
                step.sender.index(),
                step.recipient.index(),
                view.round,
                sender.index(),
                recipient.index()
            ));
            return Payload::Missing;
        }
        self.cursor += 1;
        step.payload.to_payload()
    }

    fn has_edge_faults(&self) -> bool {
        !self.cut_index.is_empty()
    }

    fn edge_cut(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> bool {
        self.cut_index
            .binary_search(&(view.round, sender.index(), recipient.index()))
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> AdversaryTrace {
        AdversaryTrace {
            family: "tape(len=2)".into(),
            n: 4,
            t: 1,
            faulty: vec![ProcessId(1)],
            steps: vec![
                TraceStep {
                    round: 1,
                    sender: ProcessId(1),
                    recipient: ProcessId(0),
                    payload: TracePayload::Values(vec![1]),
                },
                TraceStep {
                    round: 1,
                    sender: ProcessId(1),
                    recipient: ProcessId(2),
                    payload: TracePayload::Missing,
                },
            ],
            cuts: vec![TraceCut {
                round: 2,
                sender: ProcessId(0),
                recipient: ProcessId(3),
            }],
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let trace = sample_trace();
        let text = trace.to_json().to_string();
        let parsed = AdversaryTrace::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn wrong_schema_rejected() {
        let mut json = sample_trace().to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::from("sg-trace/9");
        }
        assert!(AdversaryTrace::from_json(&json).is_err());
    }

    #[test]
    fn validate_rejects_uncorrupted_sender() {
        let mut trace = sample_trace();
        trace.steps[0].sender = ProcessId(2);
        assert!(matches!(trace.validate(), Err(TraceError::Malformed(_))));
    }

    #[test]
    fn validate_rejects_out_of_range_ids() {
        let mut trace = sample_trace();
        trace.cuts[0].recipient = ProcessId(9);
        assert!(trace.validate().is_err());
        let mut trace = sample_trace();
        trace.faulty.push(ProcessId(7));
        assert!(trace.validate().is_err());
    }

    #[test]
    fn replay_detects_mismatched_n() {
        let mut replay = ReplayAdversary::new(Arc::new(sample_trace())).unwrap();
        let set = replay.corrupt(7, 1, ProcessId(0));
        assert!(set.is_empty());
        assert!(matches!(replay.verify(), Err(TraceError::Desync(_))));
    }

    #[test]
    fn replay_reports_unconsumed_steps() {
        let mut replay = ReplayAdversary::new(Arc::new(sample_trace())).unwrap();
        let _ = replay.corrupt(4, 1, ProcessId(0));
        assert!(matches!(replay.verify(), Err(TraceError::Desync(_))));
    }

    #[test]
    fn cut_lookup_matches_recorded_edges() {
        let replay = ReplayAdversary::new(Arc::new(sample_trace())).unwrap();
        assert!(replay.has_edge_faults());
        assert!(replay.cut_index.binary_search(&(2, 0, 3)).is_ok());
        assert!(replay.cut_index.binary_search(&(1, 0, 3)).is_err());
    }
}
