//! # sg-adversary — Byzantine strategy library
//!
//! Concrete adversaries for the `sg-sim` engine's full-information rushing
//! model (paper §2: "there is no restriction on the behavior of faulty
//! processors"). Each strategy chooses a corrupted set via
//! [`FaultSelection`] and then, per round and per (sender, recipient)
//! pair, an arbitrary payload — optionally starting from the *shadow* of
//! what the corrupted processor would have sent honestly.
//!
//! Strategies:
//!
//! * [`Silent`] / [`Crash`] — omission and crash failures;
//! * [`RandomLiar`] — uniform random in-domain lies;
//! * [`TwoFaced`] — consistent equivocation by recipient parity;
//! * [`EquivocatingSource`] — a source telling everyone different values;
//! * [`Stealth`] — sub-discovery-threshold corruption (one flipped value
//!   per message), stressing the Hidden Fault Lemma;
//! * [`ChainRevealer`] — reveals one fault per block, forcing worst-case
//!   round counts in the shifted families;
//! * [`DoubleTalk`] — coordinated split-brain value stories;
//! * [`StaggeredSplit`] — an equivocating source plus conspirators that
//!   activate one by one, stretching lock-in across blocks;
//! * [`Collusion`] — all faults corroborate one coherent alternative
//!   reality;
//! * [`Replay`] — resends the previous round's (wrong-length) payload;
//! * [`FrontierBreaker`] — a chain of lies concentrated on one
//!   root-to-leaf path, the Frontier Lemma's worst case;
//! * [`TapeAdversary`] — plays an explicit per-call behaviour tape;
//!   together with [`enumerate_tapes`] it model-checks small instances
//!   against *every* behaviour over a move alphabet;
//! * [`Partition`] — round-ranged network partition cutting every edge
//!   (honest ones included) across a group boundary;
//! * [`Omission`] — periodic per-edge message drops, a timing-fault
//!   texture;
//! * [`Equivocate`] — a sustained value-split schedule by recipient set;
//! * [`Adaptive`] — mid-run corruption: the fault set turns Byzantine in
//!   scripted waves.
//!
//! [`standard_suite`] bundles them into the gauntlet used by the
//! integration tests and the benchmark harness.
//!
//! Every run under any of these strategies can be captured as a
//! serializable [`AdversaryTrace`] (wrap the strategy in
//! [`RecordingAdversary`]) and re-executed bit-exactly by
//! [`ReplayAdversary`] — see the [`scenario`] module.
//!
//! # Examples
//!
//! ```
//! use sg_adversary::{FaultSelection, TwoFaced};
//! use sg_sim::{Adversary, ProcessId};
//!
//! let mut adversary = TwoFaced::new(FaultSelection::without_source());
//! let faulty = adversary.corrupt(7, 2, ProcessId(0));
//! assert_eq!(faulty.len(), 2);
//! assert!(!faulty.contains(ProcessId(0)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
pub mod scenario;
mod selection;
mod strategies;
mod suite;
mod tape;
mod util;

pub use batch::{BatchFamily, VectorFamily};
pub use scenario::{
    AdversaryTrace, RecordingAdversary, ReplayAdversary, TraceCut, TraceError, TracePayload,
    TraceStep, TRACE_SCHEMA,
};
pub use selection::FaultSelection;
pub use strategies::{
    Adaptive, ChainRevealer, Collusion, Crash, DoubleTalk, Equivocate, EquivocatingSource,
    FrontierBreaker, Omission, Partition, RandomLiar, Replay, Silent, StaggeredSplit, Stealth,
    TwoFaced,
};
pub use suite::{quick_suite, standard_suite};
pub use tape::{
    calls_per_run, enumerate_tapes, EmptyTapeError, Move, TapeAdversary, TapeEnumerator, ALL_MOVES,
    SINGLE_VALUE_MOVES,
};
