//! Shared helpers for adversary strategies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sg_sim::{AdversaryView, Payload, ProcessId, Value};

/// A deterministic RNG for one (round, sender, recipient) decision,
/// independent of call order.
pub fn call_rng(seed: u64, round: usize, sender: ProcessId, recipient: ProcessId) -> StdRng {
    let mix = seed
        ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (sender.index() as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (recipient.index() as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(mix)
}

/// A uniformly random in-domain value.
pub fn random_value(rng: &mut StdRng, view: &AdversaryView<'_>) -> Value {
    Value(rng.gen_range(0..view.domain.size()))
}

/// The sender's honest shadow payload, or [`Payload::Missing`] if it
/// would be silent this round.
pub fn shadow_or_missing(view: &AdversaryView<'_>, sender: ProcessId) -> Payload {
    view.shadow_of(sender).cloned().unwrap_or(Payload::Missing)
}

/// `len` copies of `v` as a payload: a zero-allocation [`Payload::single`]
/// for the one-value broadcasts of the king-family protocols, the usual
/// value vector otherwise.
pub fn repeated(v: Value, len: usize) -> Payload {
    if len == 1 {
        Payload::single(v)
    } else {
        Payload::Values(vec![v; len])
    }
}

/// Applies `f` to every value of the sender's shadow payload; missing
/// shadows stay missing. Representation-agnostic: bit-packed and
/// vector shadows corrupt identically.
pub fn map_shadow<F>(view: &AdversaryView<'_>, sender: ProcessId, mut f: F) -> Payload
where
    F: FnMut(usize, Value) -> Value,
{
    match view.shadow_of(sender) {
        Some(p @ (Payload::Values(_) | Payload::Bits { .. })) => Payload::Values(
            (0..p.num_values())
                .map(|i| f(i, p.value_at(i).expect("index in range")))
                .collect(),
        ),
        Some(other) => other.clone(),
        None => Payload::Missing,
    }
}

/// Flips a value within the domain: `v ↦ (v+1) mod |V|`.
///
/// Out-of-domain inputs (protocols may legitimately broadcast sentinel
/// values, e.g. an encoded `⊥` proposal) are flipped into the domain too —
/// an adversary is free to turn a `⊥` into a real value.
pub fn flip(view: &AdversaryView<'_>, v: Value) -> Value {
    Value(((u32::from(v.raw()) + 1) % u32::from(view.domain.size())) as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_rng_is_deterministic_and_distinct() {
        let mut a = call_rng(7, 3, ProcessId(1), ProcessId(2));
        let mut b = call_rng(7, 3, ProcessId(1), ProcessId(2));
        let mut c = call_rng(7, 3, ProcessId(1), ProcessId(3));
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
