//! Tape-driven adversaries and exhaustive behaviour enumeration.
//!
//! The paper's fault model allows *arbitrary* faulty behaviour, so no
//! finite strategy library can be complete. For small instances, though,
//! the space of *relevant* behaviours is finite and enumerable: the engine
//! asks the adversary for one payload per (faulty sender, recipient) pair
//! per round, in a deterministic order, so an execution is fully
//! determined by the corrupted set plus a finite *tape* of per-call
//! [`Move`]s. Enumerating all tapes over a move alphabet model-checks an
//! algorithm against every adversary expressible in that alphabet —
//! including every combination of equivocation, silence, garbage and
//! honest play across rounds and recipients.
//!
//! Two alphabets matter in practice:
//!
//! * For protocols whose honest messages carry a **single value** (round 1
//!   of every algorithm; every round of Algorithm C's first gather; king
//!   protocols), [`Move::AllZero`] / [`Move::AllOne`] / [`Move::Silent`]
//!   together express *every* possible behaviour over the binary domain —
//!   a sender can only send 0, 1, something unreadable, or nothing, and
//!   the receivers treat unreadable and nothing identically. Enumeration
//!   over this alphabet is genuinely exhaustive.
//! * For multi-value messages the alphabet is a *structured subset*
//!   (uniform stories, single flips, wrong lengths); enumeration is then a
//!   bounded model check rather than a proof, and is labelled as such in
//!   the tests that use it.

use sg_sim::{Adversary, AdversaryView, Payload, ProcessId, ProcessSet, Value};

use crate::util::{flip, map_shadow, shadow_or_missing};

/// One tape cell: how a faulty sender treats one (recipient, round) slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Move {
    /// Send exactly what an honest processor would (the shadow payload).
    Honest,
    /// Send nothing.
    Silent,
    /// Send a shadow-length vector of zeros (if the shadow would be
    /// silent, send a single zero instead — spurious traffic).
    AllZero,
    /// Send a shadow-length vector of ones (single one when the shadow
    /// would be silent).
    AllOne,
    /// Send the shadow with its first value flipped within the domain.
    FlipFirst,
    /// Send an unreadable payload (wrong length, out-of-domain values).
    Garbage,
}

/// All moves, in enumeration order.
pub const ALL_MOVES: [Move; 6] = [
    Move::Honest,
    Move::Silent,
    Move::AllZero,
    Move::AllOne,
    Move::FlipFirst,
    Move::Garbage,
];

/// The exhaustive alphabet for single-value binary messages: everything a
/// Byzantine sender can do to a receiver of one binary value.
pub const SINGLE_VALUE_MOVES: [Move; 3] = [Move::Silent, Move::AllZero, Move::AllOne];

impl Move {
    /// The move's wire name, as used by the tape family's JSON encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Move::Honest => "honest",
            Move::Silent => "silent",
            Move::AllZero => "all-zero",
            Move::AllOne => "all-one",
            Move::FlipFirst => "flip-first",
            Move::Garbage => "garbage",
        }
    }

    /// Parses a wire name back into a move.
    pub fn from_name(name: &str) -> Option<Move> {
        ALL_MOVES.into_iter().find(|m| m.as_str() == name)
    }

    /// Materializes this move for `sender` under `view`.
    pub fn apply(self, sender: ProcessId, view: &AdversaryView<'_>) -> Payload {
        let shadow_len = view.expected_len(sender);
        match self {
            Move::Honest => shadow_or_missing(view, sender),
            Move::Silent => Payload::Missing,
            Move::AllZero => Payload::defaults(shadow_len.max(1)),
            Move::AllOne => Payload::Values(vec![Value(1); shadow_len.max(1)]),
            Move::FlipFirst => {
                if shadow_len == 0 {
                    Payload::values([Value(1)])
                } else {
                    map_shadow(view, sender, |i, v| if i == 0 { flip(view, v) } else { v })
                }
            }
            Move::Garbage => Payload::Values(vec![Value(u16::MAX); shadow_len + 3]),
        }
    }
}

/// An adversary that plays a fixed tape of [`Move`]s against an explicit
/// corrupted set.
///
/// The engine calls [`Adversary::payload`] once per (sender, recipient)
/// pair per round in deterministic order, so consuming the tape
/// sequentially assigns each call its own cell; tapes shorter than the
/// call count repeat from the start.
///
/// # Examples
///
/// ```
/// use sg_adversary::{Move, TapeAdversary};
/// use sg_sim::{Adversary, ProcessId};
///
/// let mut a = TapeAdversary::new([ProcessId(1)], vec![Move::AllOne, Move::Silent]).unwrap();
/// let faulty = a.corrupt(4, 1, ProcessId(0));
/// assert!(faulty.contains(ProcessId(1)));
/// ```
#[derive(Clone, Debug)]
pub struct TapeAdversary {
    members: Vec<ProcessId>,
    tape: Vec<Move>,
    next: usize,
}

/// Error returned by [`TapeAdversary::new`] for an empty tape — there is
/// no move to wrap around to, so the adversary would have no behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmptyTapeError;

impl std::fmt::Display for EmptyTapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tape must contain at least one move")
    }
}

impl std::error::Error for EmptyTapeError {}

impl TapeAdversary {
    /// An adversary corrupting exactly `members`, playing `tape`.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyTapeError`] if `tape` is empty.
    pub fn new<I: IntoIterator<Item = ProcessId>>(
        members: I,
        tape: Vec<Move>,
    ) -> Result<Self, EmptyTapeError> {
        if tape.is_empty() {
            return Err(EmptyTapeError);
        }
        Ok(TapeAdversary {
            members: members.into_iter().collect(),
            tape,
            next: 0,
        })
    }

    /// The corrupted set the tape plays against.
    pub fn members(&self) -> &[ProcessId] {
        &self.members
    }

    /// The tape being played.
    pub fn tape(&self) -> &[Move] {
        &self.tape
    }
}

impl Adversary for TapeAdversary {
    fn name(&self) -> String {
        format!("tape(len={})", self.tape.len())
    }

    fn reseed(&mut self, _seed: u64) -> bool {
        // Seedless: members and tape are the factory's configuration,
        // so rewinding the cursor restores the fresh state exactly.
        self.next = 0;
        true
    }

    fn corrupt(&mut self, n: usize, _t: usize, _source: ProcessId) -> ProcessSet {
        self.next = 0;
        ProcessSet::from_members(n, self.members.iter().copied())
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        _recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let mv = self.tape[self.next % self.tape.len()];
        self.next += 1;
        mv.apply(sender, view)
    }
}

/// Iterates over every tape of length `len` over `alphabet` — the
/// `|alphabet|^len` behaviours of the exhaustive model check.
///
/// The iteration order is lexicographic in alphabet indices, so failures
/// reproduce deterministically from the reported tape.
///
/// # Panics
///
/// Panics if the alphabet is empty.
pub fn enumerate_tapes(alphabet: &[Move], len: usize) -> TapeEnumerator<'_> {
    assert!(!alphabet.is_empty(), "alphabet must not be empty");
    TapeEnumerator {
        alphabet,
        digits: vec![0; len],
        done: false,
    }
}

/// Iterator returned by [`enumerate_tapes`].
#[derive(Clone, Debug)]
pub struct TapeEnumerator<'a> {
    alphabet: &'a [Move],
    digits: Vec<usize>,
    done: bool,
}

impl Iterator for TapeEnumerator<'_> {
    type Item = Vec<Move>;

    fn next(&mut self) -> Option<Vec<Move>> {
        if self.done {
            return None;
        }
        let tape: Vec<Move> = self.digits.iter().map(|&d| self.alphabet[d]).collect();
        // Increment the base-|alphabet| counter.
        let mut i = 0;
        loop {
            if i == self.digits.len() {
                self.done = true;
                break;
            }
            self.digits[i] += 1;
            if self.digits[i] < self.alphabet.len() {
                break;
            }
            self.digits[i] = 0;
            i += 1;
        }
        Some(tape)
    }
}

/// The number of adversary calls the engine makes in one run: one per
/// (faulty sender, recipient ≠ sender) pair per round — the natural tape
/// length for an exhaustive check.
pub fn calls_per_run(n: usize, num_faulty: usize, rounds: usize) -> usize {
    num_faulty * (n - 1) * rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerator_counts_alphabet_power() {
        let tapes: Vec<_> = enumerate_tapes(&SINGLE_VALUE_MOVES, 3).collect();
        assert_eq!(tapes.len(), 27);
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for t in &tapes {
            assert!(seen.insert(t.clone()));
        }
    }

    #[test]
    fn enumerator_zero_length_yields_one_empty_tape() {
        let tapes: Vec<_> = enumerate_tapes(&ALL_MOVES, 0).collect();
        assert_eq!(tapes, vec![Vec::<Move>::new()]);
    }

    #[test]
    fn tape_wraps_when_short() {
        let mut a = TapeAdversary::new([ProcessId(1)], vec![Move::Silent]).unwrap();
        let faulty = a.corrupt(4, 1, ProcessId(0));
        assert_eq!(faulty.len(), 1);
        assert_eq!(a.tape().len(), 1);
    }

    #[test]
    fn move_names_round_trip() {
        for m in ALL_MOVES {
            assert_eq!(Move::from_name(m.as_str()), Some(m));
        }
        assert_eq!(Move::from_name("bogus"), None);
    }

    #[test]
    fn calls_per_run_formula() {
        assert_eq!(calls_per_run(4, 1, 2), 6);
        assert_eq!(calls_per_run(7, 2, 3), 36);
    }

    #[test]
    fn empty_tape_rejected() {
        assert_eq!(
            TapeAdversary::new([ProcessId(1)], Vec::new()).unwrap_err(),
            EmptyTapeError
        );
    }
}
