//! Choosing which processors an adversary corrupts.

use serde::json::{JsonError, Value as Json};
use serde::{FromJson, ToJson};
use sg_sim::{ProcessId, ProcessSet};

/// A policy for picking the corrupted set.
///
/// # Examples
///
/// ```
/// use sg_adversary::FaultSelection;
/// use sg_sim::ProcessId;
///
/// // Corrupt the source plus the lowest non-source ids, up to t.
/// let sel = FaultSelection::with_source();
/// let set = sel.select(7, 2, ProcessId(0));
/// assert!(set.contains(ProcessId(0)));
/// assert_eq!(set.len(), 2);
///
/// // Corrupt t non-source processors.
/// let sel = FaultSelection::without_source();
/// let set = sel.select(7, 2, ProcessId(0));
/// assert!(!set.contains(ProcessId(0)));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultSelection {
    include_source: bool,
    count: Option<usize>,
    explicit: Option<Vec<ProcessId>>,
}

impl FaultSelection {
    /// Corrupts the source and then the lowest non-source ids, `t` in
    /// total (or fewer if limited by [`FaultSelection::limit`]).
    pub fn with_source() -> Self {
        FaultSelection {
            include_source: true,
            count: None,
            explicit: None,
        }
    }

    /// Corrupts the lowest non-source ids, `t` in total.
    pub fn without_source() -> Self {
        FaultSelection {
            include_source: false,
            count: None,
            explicit: None,
        }
    }

    /// Corrupts exactly the given processors.
    pub fn explicit<I: IntoIterator<Item = ProcessId>>(members: I) -> Self {
        FaultSelection {
            include_source: false,
            count: None,
            explicit: Some(members.into_iter().collect()),
        }
    }

    /// Caps the number of corrupted processors at `count` (default: the
    /// protocol's fault bound `t`).
    pub fn limit(mut self, count: usize) -> Self {
        self.count = Some(count);
        self
    }

    /// Whether this selection corrupts the source.
    pub fn corrupts_source(&self, source: ProcessId) -> bool {
        match &self.explicit {
            Some(list) => list.contains(&source),
            None => self.include_source,
        }
    }

    /// Materializes the corrupted set for a system of `n` processors with
    /// fault bound `t`.
    pub fn select(&self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        if let Some(list) = &self.explicit {
            return ProcessSet::from_members(n, list.iter().copied());
        }
        let budget = self.count.unwrap_or(t).min(t).min(n);
        let mut set = ProcessSet::new(n);
        if self.include_source && budget > 0 {
            set.insert(source);
        }
        let mut idx = 0usize;
        while set.len() < budget && idx < n {
            let p = ProcessId(idx);
            if p != source {
                set.insert(p);
            }
            idx += 1;
        }
        set
    }

    /// A short suffix describing the selection, used in adversary names.
    pub fn describe(&self) -> String {
        match &self.explicit {
            Some(list) => format!("explicit:{}", list.len()),
            None => {
                let src = if self.include_source { "+src" } else { "-src" };
                match self.count {
                    Some(c) => format!("{src},f={c}"),
                    None => src.to_string(),
                }
            }
        }
    }
}

impl ToJson for FaultSelection {
    /// Wire form (`sg-serve/1`): `{"include_source":bool}` with optional
    /// `"limit":k` and `"explicit":[ids…]` fields; an explicit member
    /// list overrides the other two on decode, mirroring
    /// [`FaultSelection::select`].
    fn to_json(&self) -> Json {
        let mut fields = vec![(
            "include_source".to_string(),
            Json::Bool(self.include_source),
        )];
        if let Some(count) = self.count {
            fields.push(("limit".to_string(), Json::from(count)));
        }
        if let Some(list) = &self.explicit {
            fields.push((
                "explicit".to_string(),
                Json::Arr(list.iter().map(|p| Json::from(p.0)).collect()),
            ));
        }
        Json::Obj(fields)
    }
}

impl FromJson for FaultSelection {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let include_source = v
            .need("include_source")?
            .as_bool()
            .ok_or_else(|| JsonError::msg("include_source must be a boolean"))?;
        let count = match v.get("limit") {
            None => None,
            Some(limit) => Some(
                limit
                    .as_usize()
                    .ok_or_else(|| JsonError::msg("limit must be a non-negative integer"))?,
            ),
        };
        let explicit = match v.get("explicit") {
            None => None,
            Some(list) => {
                let items = list
                    .as_arr()
                    .ok_or_else(|| JsonError::msg("explicit must be an array of processor ids"))?;
                Some(
                    items
                        .iter()
                        .map(|item| {
                            item.as_usize().map(ProcessId).ok_or_else(|| {
                                JsonError::msg("explicit members must be non-negative integers")
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
        };
        Ok(FaultSelection {
            include_source,
            count,
            explicit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_source_fills_lowest_ids() {
        let set = FaultSelection::with_source().select(7, 3, ProcessId(2));
        let got: Vec<usize> = set.iter().map(|p| p.index()).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn without_source_skips_source() {
        let set = FaultSelection::without_source().select(7, 3, ProcessId(1));
        let got: Vec<usize> = set.iter().map(|p| p.index()).collect();
        assert_eq!(got, vec![0, 2, 3]);
    }

    #[test]
    fn limit_caps_below_t() {
        let set = FaultSelection::without_source()
            .limit(1)
            .select(7, 3, ProcessId(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn limit_never_exceeds_t() {
        let set = FaultSelection::without_source()
            .limit(9)
            .select(7, 2, ProcessId(0));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn explicit_is_verbatim() {
        let set = FaultSelection::explicit([ProcessId(4), ProcessId(6)]).select(8, 1, ProcessId(0));
        assert_eq!(set.len(), 2);
        assert!(set.contains(ProcessId(4)));
        assert!(set.contains(ProcessId(6)));
    }

    #[test]
    fn json_round_trips_every_shape() {
        for sel in [
            FaultSelection::with_source(),
            FaultSelection::without_source(),
            FaultSelection::with_source().limit(2),
            FaultSelection::explicit([ProcessId(4), ProcessId(6)]),
        ] {
            let encoded = sel.to_json().to_string();
            let decoded = FaultSelection::from_json(&Json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(decoded, sel, "through {encoded}");
        }
        assert!(FaultSelection::from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(
            FaultSelection::from_json(&Json::parse("{\"include_source\":3}").unwrap()).is_err()
        );
    }
}
