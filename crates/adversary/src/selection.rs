//! Choosing which processors an adversary corrupts.

use sg_sim::{ProcessId, ProcessSet};

/// A policy for picking the corrupted set.
///
/// # Examples
///
/// ```
/// use sg_adversary::FaultSelection;
/// use sg_sim::ProcessId;
///
/// // Corrupt the source plus the lowest non-source ids, up to t.
/// let sel = FaultSelection::with_source();
/// let set = sel.select(7, 2, ProcessId(0));
/// assert!(set.contains(ProcessId(0)));
/// assert_eq!(set.len(), 2);
///
/// // Corrupt t non-source processors.
/// let sel = FaultSelection::without_source();
/// let set = sel.select(7, 2, ProcessId(0));
/// assert!(!set.contains(ProcessId(0)));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultSelection {
    include_source: bool,
    count: Option<usize>,
    explicit: Option<Vec<ProcessId>>,
}

impl FaultSelection {
    /// Corrupts the source and then the lowest non-source ids, `t` in
    /// total (or fewer if limited by [`FaultSelection::limit`]).
    pub fn with_source() -> Self {
        FaultSelection {
            include_source: true,
            count: None,
            explicit: None,
        }
    }

    /// Corrupts the lowest non-source ids, `t` in total.
    pub fn without_source() -> Self {
        FaultSelection {
            include_source: false,
            count: None,
            explicit: None,
        }
    }

    /// Corrupts exactly the given processors.
    pub fn explicit<I: IntoIterator<Item = ProcessId>>(members: I) -> Self {
        FaultSelection {
            include_source: false,
            count: None,
            explicit: Some(members.into_iter().collect()),
        }
    }

    /// Caps the number of corrupted processors at `count` (default: the
    /// protocol's fault bound `t`).
    pub fn limit(mut self, count: usize) -> Self {
        self.count = Some(count);
        self
    }

    /// Whether this selection corrupts the source.
    pub fn corrupts_source(&self, source: ProcessId) -> bool {
        match &self.explicit {
            Some(list) => list.contains(&source),
            None => self.include_source,
        }
    }

    /// Materializes the corrupted set for a system of `n` processors with
    /// fault bound `t`.
    pub fn select(&self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        if let Some(list) = &self.explicit {
            return ProcessSet::from_members(n, list.iter().copied());
        }
        let budget = self.count.unwrap_or(t).min(t).min(n);
        let mut set = ProcessSet::new(n);
        if self.include_source && budget > 0 {
            set.insert(source);
        }
        let mut idx = 0usize;
        while set.len() < budget && idx < n {
            let p = ProcessId(idx);
            if p != source {
                set.insert(p);
            }
            idx += 1;
        }
        set
    }

    /// A short suffix describing the selection, used in adversary names.
    pub fn describe(&self) -> String {
        match &self.explicit {
            Some(list) => format!("explicit:{}", list.len()),
            None => {
                let src = if self.include_source { "+src" } else { "-src" };
                match self.count {
                    Some(c) => format!("{src},f={c}"),
                    None => src.to_string(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_source_fills_lowest_ids() {
        let set = FaultSelection::with_source().select(7, 3, ProcessId(2));
        let got: Vec<usize> = set.iter().map(|p| p.index()).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn without_source_skips_source() {
        let set = FaultSelection::without_source().select(7, 3, ProcessId(1));
        let got: Vec<usize> = set.iter().map(|p| p.index()).collect();
        assert_eq!(got, vec![0, 2, 3]);
    }

    #[test]
    fn limit_caps_below_t() {
        let set = FaultSelection::without_source()
            .limit(1)
            .select(7, 3, ProcessId(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn limit_never_exceeds_t() {
        let set = FaultSelection::without_source()
            .limit(9)
            .select(7, 2, ProcessId(0));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn explicit_is_verbatim() {
        let set = FaultSelection::explicit([ProcessId(4), ProcessId(6)]).select(8, 1, ProcessId(0));
        assert_eq!(set.len(), 2);
        assert!(set.contains(ProcessId(4)));
        assert!(set.contains(ProcessId(6)));
    }
}
