//! The Byzantine strategy library.
//!
//! Each strategy implements [`Adversary`] for the engine's
//! full-information rushing model. Strategies that want to look honest
//! start from their *shadow* payload (what the corrupted processor would
//! have sent if honest) and corrupt it; strategies that want chaos build
//! payloads from scratch.

use std::sync::Arc;

use sg_sim::{Adversary, AdversaryView, Payload, ProcessId, ProcessSet, Value};

use crate::selection::FaultSelection;
use crate::util::{call_rng, flip, map_shadow, random_value, repeated, shadow_or_missing};

/// Faulty processors behave perfectly honestly until `crash_round`, then
/// go permanently silent — the classic crash-failure pattern, which
/// exercises the "inappropriate message → default value" path. Combined
/// with [`FaultSelection::limit`] this is the sweep engine's
/// crash-early/go-silent scenario family for plotting rounds saved
/// against the actual fault count `f ≤ t`.
#[derive(Clone, Debug)]
pub struct Crash {
    selection: FaultSelection,
    crash_round: usize,
    name: Arc<str>,
}

impl Crash {
    /// Crash the selected processors at the start of `crash_round`.
    pub fn new(selection: FaultSelection, crash_round: usize) -> Self {
        let name = Arc::from(format!("crash(r={crash_round},{})", selection.describe()).as_str());
        Crash {
            selection,
            crash_round,
            name,
        }
    }
}

impl Adversary for Crash {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        self.name.clone()
    }

    fn reseed(&mut self, _seed: u64) -> bool {
        // Seedless and stateless across runs.
        true
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        _recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        if view.round >= self.crash_round {
            Payload::Missing
        } else {
            shadow_or_missing(view, sender)
        }
    }
}

/// Faulty processors never send anything at all.
#[derive(Clone, Debug)]
pub struct Silent {
    selection: FaultSelection,
    name: Arc<str>,
}

impl Silent {
    /// Silence the selected processors from round 1.
    pub fn new(selection: FaultSelection) -> Self {
        let name = Arc::from(format!("silent({})", selection.describe()).as_str());
        Silent { selection, name }
    }
}

impl Adversary for Silent {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        self.name.clone()
    }

    fn reseed(&mut self, _seed: u64) -> bool {
        true
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        _sender: ProcessId,
        _recipient: ProcessId,
        _view: &AdversaryView<'_>,
    ) -> Payload {
        Payload::Missing
    }
}

/// Faulty processors send independent uniformly random in-domain values of
/// the honest length to every recipient, every round.
///
/// The name deliberately excludes the seed: seeds are per-run data the
/// sweep harness already reports (`CellReport::first_seed`, the
/// agreement-assert messages), and a seed-free name is what lets pooled
/// [`Adversary::reseed`] keep a zero-allocation shared name across runs.
#[derive(Clone, Debug)]
pub struct RandomLiar {
    selection: FaultSelection,
    seed: u64,
    name: Arc<str>,
}

impl RandomLiar {
    /// Random lies from the selected processors, seeded deterministically.
    pub fn new(selection: FaultSelection, seed: u64) -> Self {
        let name = Arc::from(format!("random-liar({})", selection.describe()).as_str());
        RandomLiar {
            selection,
            seed,
            name,
        }
    }
}

impl Adversary for RandomLiar {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        self.name.clone()
    }

    fn reseed(&mut self, seed: u64) -> bool {
        // The seed is the only per-run state.
        self.seed = seed;
        true
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let len = view.expected_len(sender);
        if len == 0 {
            return Payload::Missing;
        }
        let mut rng = call_rng(self.seed, view.round, sender, recipient);
        if len == 1 {
            // The king-family case: one random value, no vector.
            return Payload::single(random_value(&mut rng, view));
        }
        Payload::Values((0..len).map(|_| random_value(&mut rng, view)).collect())
    }
}

/// Faulty processors tell recipients with even ids the honest story and
/// recipients with odd ids the domain-flipped story — maximal consistent
/// equivocation, the pattern the Correctness Lemma's majority argument
/// must defeat.
#[derive(Clone, Debug)]
pub struct TwoFaced {
    selection: FaultSelection,
}

impl TwoFaced {
    /// Two-faced behaviour from the selected processors.
    pub fn new(selection: FaultSelection) -> Self {
        TwoFaced { selection }
    }
}

impl Adversary for TwoFaced {
    fn name(&self) -> String {
        format!("two-faced({})", self.selection.describe())
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        if recipient.index().is_multiple_of(2) {
            shadow_or_missing(view, sender)
        } else {
            map_shadow(view, sender, |_, v| flip(view, v))
        }
    }
}

/// A faulty *source* that tells each recipient a different initial value
/// in round 1 (recipient id mod |V|) and afterwards keeps relaying
/// whichever story keeps processors split (non-source co-conspirators, if
/// selected, echo their shadow).
#[derive(Clone, Debug)]
pub struct EquivocatingSource {
    selection: FaultSelection,
}

impl EquivocatingSource {
    /// Equivocation by the source; `selection` should corrupt the source
    /// (use [`FaultSelection::with_source`]).
    pub fn new(selection: FaultSelection) -> Self {
        EquivocatingSource { selection }
    }
}

impl Adversary for EquivocatingSource {
    fn name(&self) -> String {
        format!("equivocating-source({})", self.selection.describe())
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        let set = self.selection.select(n, t, source);
        assert!(
            set.contains(source),
            "EquivocatingSource needs the source corrupted"
        );
        set
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        if sender == view.source && view.round == 1 {
            return Payload::values([Value(recipient.index() as u16 % view.domain.size())]);
        }
        if sender == view.source {
            // Keep telling each recipient the story it was told in
            // round 1, at the honest payload length.
            let claimed = Value(recipient.index() as u16 % view.domain.size());
            let len = view.expected_len(sender);
            if len == 0 {
                return Payload::Missing;
            }
            return repeated(claimed, len);
        }
        shadow_or_missing(view, sender)
    }
}

/// Stays under the Fault Discovery Rule's radar: each faulty processor
/// sends its honest shadow with exactly one value flipped, at a position
/// that rotates with the round and recipient. Exercises the Hidden Fault
/// Lemma — faults that are never globally detected must still be
/// out-voted.
#[derive(Clone, Debug)]
pub struct Stealth {
    selection: FaultSelection,
}

impl Stealth {
    /// Stealthy single-value corruption from the selected processors.
    pub fn new(selection: FaultSelection) -> Self {
        Stealth { selection }
    }
}

impl Adversary for Stealth {
    fn name(&self) -> String {
        format!("stealth({})", self.selection.describe())
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let len = view.expected_len(sender);
        if len == 0 {
            return shadow_or_missing(view, sender);
        }
        let target = (view.round + recipient.index()) % len;
        map_shadow(
            view,
            sender,
            |i, v| if i == target { flip(view, v) } else { v },
        )
    }
}

/// The round-count stressor: faulty processors out themselves *one per
/// block*. Fault `j` behaves perfectly honestly until round
/// `reveal_start + j·stride`, then equivocates randomly forever. Against
/// the shifted families this forces close to the worst-case number of
/// blocks, because each block globally detects only the freshly revealed
/// faults.
#[derive(Clone, Debug)]
pub struct ChainRevealer {
    selection: FaultSelection,
    reveal_start: usize,
    stride: usize,
    seed: u64,
    name: Arc<str>,
}

impl ChainRevealer {
    /// Reveal one fault every `stride` rounds starting at `reveal_start`.
    pub fn new(selection: FaultSelection, reveal_start: usize, stride: usize, seed: u64) -> Self {
        let stride = stride.max(1);
        let name = Arc::from(
            format!(
                "chain-revealer(start={reveal_start},stride={stride},{})",
                selection.describe()
            )
            .as_str(),
        );
        ChainRevealer {
            selection,
            reveal_start,
            stride,
            seed,
            name,
        }
    }
}

impl Adversary for ChainRevealer {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        self.name.clone()
    }

    fn reseed(&mut self, seed: u64) -> bool {
        // The seed is the only per-run state.
        self.seed = seed;
        true
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        // Rank of this sender within the corrupted set (stable order).
        let rank = view.faulty.iter().position(|p| p == sender).unwrap_or(0);
        let reveal_round = self.reveal_start + rank * self.stride;
        if view.round < reveal_round {
            return shadow_or_missing(view, sender);
        }
        let len = view.expected_len(sender);
        if len == 0 {
            return Payload::Missing;
        }
        let mut rng = call_rng(self.seed, view.round, sender, recipient);
        if len == 1 {
            return Payload::single(random_value(&mut rng, view));
        }
        Payload::Values((0..len).map(|_| random_value(&mut rng, view)).collect())
    }
}

/// Split-brain coordination: all faulty processors (source included if
/// selected) consistently tell the lower-id half of the system "1" and
/// the upper half "0", at honest lengths — the strongest consistent
/// attempt to drive two groups of correct processors to different
/// decisions.
#[derive(Clone, Debug)]
pub struct DoubleTalk {
    selection: FaultSelection,
}

impl DoubleTalk {
    /// Coordinated double-talk from the selected processors.
    pub fn new(selection: FaultSelection) -> Self {
        DoubleTalk { selection }
    }
}

impl Adversary for DoubleTalk {
    fn name(&self) -> String {
        format!("double-talk({})", self.selection.describe())
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let story = if recipient.index() < view.n / 2 {
            Value(1)
        } else {
            Value(0)
        };
        let len = if sender == view.source && view.round == 1 {
            1
        } else {
            view.expected_len(sender)
        };
        if len == 0 {
            return Payload::Missing;
        }
        repeated(story, len)
    }
}

/// A staggered split-brain attack tuned to delay decision lock-in.
///
/// The source (which must be in the selection) equivocates in round 1 —
/// lower-id recipients hear `1`, upper-id recipients `0`. Each non-source
/// conspirator stays *perfectly honest* until its personal activation
/// round `activate_start + k·stride` (k-th conspirator), then switches to
/// the consistent half/half double-talk. Staying honest early keeps a
/// conspirator undiscovered — the Fault Discovery Rule has nothing on it —
/// so the dissent it injects later lands after earlier liars were masked,
/// stretching the detect-or-persist progression across blocks. This is
/// the lock-in analogue of [`ChainRevealer`]'s round-count attack.
#[derive(Clone, Debug)]
pub struct StaggeredSplit {
    selection: FaultSelection,
    activate_start: usize,
    stride: usize,
}

impl StaggeredSplit {
    /// Conspirator `k` activates at round `activate_start + k*stride`.
    pub fn new(selection: FaultSelection, activate_start: usize, stride: usize) -> Self {
        StaggeredSplit {
            selection,
            activate_start,
            stride,
        }
    }
}

impl Adversary for StaggeredSplit {
    fn name(&self) -> String {
        format!(
            "staggered-split(start={},stride={},{})",
            self.activate_start,
            self.stride,
            self.selection.describe()
        )
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let story = if recipient.index() < view.n / 2 {
            Value(1)
        } else {
            Value(0)
        };
        if sender == view.source {
            // The source only matters in round 1; split immediately.
            return if view.round == 1 {
                Payload::values([story])
            } else {
                shadow_or_missing(view, sender)
            };
        }
        // The k-th non-source conspirator (by id order) activates at
        // activate_start + k*stride.
        let rank = view
            .faulty
            .iter()
            .filter(|p| *p != view.source)
            .position(|p| p == sender)
            .unwrap_or(0);
        let activation = self.activate_start + rank * self.stride;
        if view.round < activation {
            return shadow_or_missing(view, sender);
        }
        let len = view.expected_len(sender);
        if len == 0 {
            return Payload::Missing;
        }
        repeated(story, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_fixture<'a>(
        faulty: &'a ProcessSet,
        shadow: &'a [Option<std::sync::Arc<Payload>>],
    ) -> AdversaryView<'a> {
        AdversaryView {
            round: 2,
            total_rounds: 4,
            n: 4,
            t: 1,
            source: ProcessId(0),
            source_value: Value(1),
            domain: sg_sim::ValueDomain::binary(),
            faulty,
            honest_broadcast: &[],
            shadow_broadcast: shadow,
            sigs: None,
        }
    }

    fn shadow_with(sender: usize, vals: Vec<Value>) -> Vec<Option<std::sync::Arc<Payload>>> {
        let mut v: Vec<Option<std::sync::Arc<Payload>>> = vec![None; 4];
        v[sender] = Some(std::sync::Arc::new(Payload::Values(vals)));
        v
    }

    #[test]
    fn crash_follows_shadow_then_stops() {
        let faulty = ProcessSet::from_members(4, [ProcessId(1)]);
        let shadow = shadow_with(1, vec![Value(1), Value(0)]);
        let mut adv = Crash::new(FaultSelection::without_source(), 3);
        let view = view_fixture(&faulty, &shadow);
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(2), &view),
            Payload::values([Value(1), Value(0)])
        );
        let mut view_late = view_fixture(&faulty, &shadow);
        view_late.round = 3;
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(2), &view_late),
            Payload::Missing
        );
    }

    #[test]
    fn two_faced_flips_for_odd_recipients() {
        let faulty = ProcessSet::from_members(4, [ProcessId(1)]);
        let shadow = shadow_with(1, vec![Value(1), Value(0)]);
        let mut adv = TwoFaced::new(FaultSelection::without_source());
        let view = view_fixture(&faulty, &shadow);
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(2), &view),
            Payload::values([Value(1), Value(0)])
        );
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(3), &view),
            Payload::values([Value(0), Value(1)])
        );
    }

    #[test]
    fn stealth_flips_exactly_one_position() {
        let faulty = ProcessSet::from_members(4, [ProcessId(1)]);
        let shadow = shadow_with(1, vec![Value(1), Value(1), Value(1)]);
        let mut adv = Stealth::new(FaultSelection::without_source());
        let view = view_fixture(&faulty, &shadow);
        let got = adv.payload(ProcessId(1), ProcessId(2), &view);
        if let Payload::Values(vals) = got {
            let flipped = vals.iter().filter(|v| **v == Value(0)).count();
            assert_eq!(flipped, 1);
        } else {
            panic!("expected values");
        }
    }

    #[test]
    fn random_liar_is_deterministic_per_seed() {
        let faulty = ProcessSet::from_members(4, [ProcessId(1)]);
        let shadow = shadow_with(1, vec![Value(1), Value(1)]);
        let mut a = RandomLiar::new(FaultSelection::without_source(), 42);
        let mut b = RandomLiar::new(FaultSelection::without_source(), 42);
        let view = view_fixture(&faulty, &shadow);
        assert_eq!(
            a.payload(ProcessId(1), ProcessId(3), &view),
            b.payload(ProcessId(1), ProcessId(3), &view)
        );
    }

    #[test]
    fn chain_revealer_is_honest_before_reveal() {
        let faulty = ProcessSet::from_members(4, [ProcessId(1), ProcessId(2)]);
        let shadow = shadow_with(1, vec![Value(1)]);
        let mut adv = ChainRevealer::new(FaultSelection::without_source(), 5, 3, 7);
        let view = view_fixture(&faulty, &shadow);
        // Round 2 < reveal at 5: honest shadow.
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(3), &view),
            Payload::values([Value(1)])
        );
    }

    #[test]
    fn collusion_tells_one_coherent_lie() {
        let faulty = ProcessSet::from_members(4, [ProcessId(1)]);
        let shadow = shadow_with(1, vec![Value(1), Value(1)]);
        let mut adv = Collusion::new(FaultSelection::without_source());
        let view = view_fixture(&faulty, &shadow);
        // source_value = 1 -> the lie is 0, everywhere, to everyone.
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(0), &view),
            Payload::values([Value(0), Value(0)])
        );
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(3), &view),
            Payload::values([Value(0), Value(0)])
        );
    }

    #[test]
    fn replay_sends_previous_rounds_shadow() {
        let faulty = ProcessSet::from_members(4, [ProcessId(1)]);
        let shadow = shadow_with(1, vec![Value(1), Value(0)]);
        let mut adv = Replay::new(FaultSelection::without_source());
        let view = view_fixture(&faulty, &shadow);
        // First round seen: nothing stashed yet.
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(0), &view),
            Payload::Missing
        );
        // Next call (new round in a real run): the stash now replays.
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(0), &view),
            Payload::values([Value(1), Value(0)])
        );
    }

    #[test]
    fn double_talk_splits_the_world() {
        let faulty = ProcessSet::from_members(4, [ProcessId(1)]);
        let shadow = shadow_with(1, vec![Value(1), Value(1)]);
        let mut adv = DoubleTalk::new(FaultSelection::without_source());
        let view = view_fixture(&faulty, &shadow);
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(0), &view),
            Payload::values([Value(1), Value(1)])
        );
        assert_eq!(
            adv.payload(ProcessId(1), ProcessId(3), &view),
            Payload::values([Value(0), Value(0)])
        );
    }

    #[test]
    fn staggered_split_is_honest_before_activation() {
        let faulty = ProcessSet::from_members(4, [ProcessId(0), ProcessId(2)]);
        let shadow = shadow_with(2, vec![Value(1)]);
        let mut adv = StaggeredSplit::new(FaultSelection::with_source(), 4, 2);
        let view = view_fixture(&faulty, &shadow); // round 2
                                                   // P2 is conspirator rank 0, activates at round 4: honest in round 2.
        assert_eq!(
            adv.payload(ProcessId(2), ProcessId(1), &view),
            Payload::values([Value(1)])
        );
        let mut late = view_fixture(&faulty, &shadow);
        late.round = 4;
        // After activation: lower-half recipients hear 1, upper half 0.
        assert_eq!(
            adv.payload(ProcessId(2), ProcessId(1), &late),
            Payload::values([Value(1)])
        );
        assert_eq!(
            adv.payload(ProcessId(2), ProcessId(3), &late),
            Payload::values([Value(0)])
        );
    }

    #[test]
    fn staggered_split_source_splits_round_one() {
        let faulty = ProcessSet::from_members(4, [ProcessId(0)]);
        let shadow = shadow_with(0, vec![Value(1)]);
        let mut adv = StaggeredSplit::new(FaultSelection::with_source(), 2, 2);
        let mut view = view_fixture(&faulty, &shadow);
        view.round = 1;
        assert_eq!(
            adv.payload(ProcessId(0), ProcessId(1), &view),
            Payload::values([Value(1)])
        );
        assert_eq!(
            adv.payload(ProcessId(0), ProcessId(3), &view),
            Payload::values([Value(0)])
        );
    }
}

/// A coherent alternative reality: every faulty processor claims, to
/// everyone and at every level, that the world agrees on the flipped
/// story. All faults corroborate each other — the strongest *consistent*
/// lie, against which the majority arguments (not the discovery rules)
/// must carry the proof.
#[derive(Clone, Debug)]
pub struct Collusion {
    selection: FaultSelection,
}

impl Collusion {
    /// Coherent collusion from the selected processors.
    pub fn new(selection: FaultSelection) -> Self {
        Collusion { selection }
    }
}

impl Adversary for Collusion {
    fn name(&self) -> String {
        format!("collusion({})", self.selection.describe())
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        _recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let lie = flip(view, view.source_value);
        if sender == view.source && view.round == 1 {
            return Payload::values([lie]);
        }
        let len = view.expected_len(sender);
        if len == 0 {
            return Payload::Missing;
        }
        repeated(lie, len)
    }
}

/// Replays the previous round's honest shadow payload — usually the wrong
/// length for the current round, exercising every malformed-message
/// sanitization path without being random.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    selection: Option<FaultSelection>,
    previous: std::collections::HashMap<ProcessId, Payload>,
}

impl Replay {
    /// Replay behaviour from the selected processors.
    pub fn new(selection: FaultSelection) -> Self {
        Replay {
            selection: Some(selection),
            previous: std::collections::HashMap::new(),
        }
    }
}

impl Adversary for Replay {
    fn name(&self) -> String {
        format!(
            "replay({})",
            self.selection
                .as_ref()
                .map_or_else(|| "-".to_string(), FaultSelection::describe)
        )
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection
            .as_ref()
            .expect("constructed via Replay::new")
            .select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let out = self
            .previous
            .get(&sender)
            .cloned()
            .unwrap_or(Payload::Missing);
        // Refresh the stash once per round (on the first recipient call).
        if recipient.index() == (0..view.n).find(|&r| r != sender.index()).unwrap_or(0) {
            self.previous
                .insert(sender, shadow_or_missing(view, sender));
        }
        out
    }
}

/// The canonical worst case for the Frontier Lemma: the faults form a
/// *chain* `f₁, …, f_k`, and fault `f_j` lies (by recipient parity)
/// exactly about the tree node `s·f₁⋯f_{j−1}` — the node directly above
/// its own position on the attacked root-to-leaf path — while behaving
/// honestly everywhere else. This concentrates all corruption on a single
/// path, the configuration the proof of the Frontier Lemma defends
/// against: with at most `t` faults the path must still contain a correct
/// (hence common) node.
#[derive(Clone, Debug)]
pub struct FrontierBreaker {
    selection: FaultSelection,
}

impl FrontierBreaker {
    /// Chain-of-lies behaviour from the selected processors. Use
    /// [`FaultSelection::with_source`] so the attacked path starts with a
    /// faulty source.
    pub fn new(selection: FaultSelection) -> Self {
        FrontierBreaker { selection }
    }
}

impl Adversary for FrontierBreaker {
    fn name(&self) -> String {
        format!("frontier-breaker({})", self.selection.describe())
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        // The faulty source equivocates in round 1 — the root of the
        // attacked path.
        if sender == view.source && view.round == 1 {
            return Payload::values([Value((recipient.index() as u16) % view.domain.size())]);
        }
        // The chain: faulty processors in ascending id order, source
        // first if corrupted.
        let mut chain: Vec<ProcessId> = Vec::new();
        if view.faulty.contains(view.source) {
            chain.push(view.source);
        }
        chain.extend(view.faulty.iter().filter(|f| *f != view.source));
        let Some(rank) = chain.iter().position(|f| *f == sender) else {
            return shadow_or_missing(view, sender);
        };
        // The node this fault lies about: the chain prefix above it
        // (without the leading source, which labels the root).
        let target: Vec<ProcessId> = chain[..rank]
            .iter()
            .copied()
            .filter(|p| *p != view.source)
            .collect();
        let Some(shadow) = view.shadow_of(sender) else {
            return Payload::Missing;
        };
        if !matches!(shadow, Payload::Values(_) | Payload::Bits { .. }) {
            return Payload::Missing;
        }
        let len = shadow.num_values();
        // Locate the target node's index in the level being broadcast.
        let shape = sg_eigtree::Shape::new(view.n, view.source);
        let mut level = 0usize;
        while shape.level_size(level) < len {
            level += 1;
        }
        if shape.level_size(level) != len || target.len() != level {
            // Not the level containing the target: behave honestly.
            return shadow.clone();
        }
        let Some(idx) = shape.index_of(&target) else {
            return shadow.clone();
        };
        let mut out: Vec<Value> = (0..len)
            .map(|i| shadow.value_at(i).expect("index in range"))
            .collect();
        if recipient.index() % 2 == 1 {
            out[idx] = flip(view, out[idx]);
        }
        Payload::Values(out)
    }
}

/// A round-ranged **network partition**: during `[from, to]` every edge
/// crossing the `split` boundary (ids `< split` on one side, the rest on
/// the other) is cut — honest edges through [`Adversary::edge_cut`],
/// the corrupted processors' own cross-split traffic by sending nothing.
///
/// This is a *link*-fault family: the corrupted set exists so the run
/// has a fault budget to account the damage against, but corrupted
/// processors otherwise relay their honest shadows, so placing the whole
/// cut set inside one side (e.g. `selection.limit(1)` with `split = 1`)
/// models an honest network healing around an isolated group.
#[derive(Clone, Debug)]
pub struct Partition {
    selection: FaultSelection,
    split: usize,
    from: usize,
    to: usize,
    name: Arc<str>,
}

impl Partition {
    /// Cut every edge crossing the `split` boundary from round `from`
    /// through round `to` (inclusive, 1-based).
    pub fn new(selection: FaultSelection, split: usize, from: usize, to: usize) -> Self {
        let name = Arc::from(
            format!(
                "partition(split={split},r={from}..{to},{})",
                selection.describe()
            )
            .as_str(),
        );
        Partition {
            selection,
            split,
            from,
            to,
            name,
        }
    }

    fn crosses(&self, a: ProcessId, b: ProcessId) -> bool {
        (a.index() < self.split) != (b.index() < self.split)
    }

    fn active(&self, round: usize) -> bool {
        round >= self.from && round <= self.to
    }
}

impl Adversary for Partition {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        self.name.clone()
    }

    fn reseed(&mut self, _seed: u64) -> bool {
        true
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        if self.active(view.round) && self.crosses(sender, recipient) {
            Payload::Missing
        } else {
            shadow_or_missing(view, sender)
        }
    }

    fn has_edge_faults(&self) -> bool {
        true
    }

    fn edge_cut(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> bool {
        self.active(view.round) && self.crosses(sender, recipient)
    }
}

/// Per-edge **omission pattern**: the corrupted senders drop exactly the
/// (round, sender, recipient) slots where
/// `(round + sender + recipient + phase) % period == 0`, and relay their
/// honest shadow everywhere else — periodic, deterministic message loss
/// that drifts across the recipient space round by round, the timing-
/// fault texture crash/silent cannot produce.
#[derive(Clone, Debug)]
pub struct Omission {
    selection: FaultSelection,
    period: usize,
    phase: usize,
    name: Arc<str>,
}

impl Omission {
    /// Drop every `period`-th edge slot, offset by `phase`
    /// (`period` is clamped to ≥ 1).
    pub fn new(selection: FaultSelection, period: usize, phase: usize) -> Self {
        let period = period.max(1);
        let name =
            Arc::from(format!("omission(p={period},ph={phase},{})", selection.describe()).as_str());
        Omission {
            selection,
            period,
            phase,
            name,
        }
    }

    fn drops(&self, round: usize, sender: ProcessId, recipient: ProcessId) -> bool {
        (round + sender.index() + recipient.index() + self.phase).is_multiple_of(self.period)
    }
}

impl Adversary for Omission {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        self.name.clone()
    }

    fn reseed(&mut self, _seed: u64) -> bool {
        true
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        if self.drops(view.round, sender, recipient) {
            Payload::Missing
        } else {
            shadow_or_missing(view, sender)
        }
    }
}

/// An **equivocation schedule**: from round `start` on, every corrupted
/// sender tells recipients with ids `< split` an all-zeros story and
/// everyone else an all-ones story, both at the honest length — maximal
/// sustained disagreement between two fixed audiences, the value-split
/// pattern the equivocating-source strategy plays only in round 1.
#[derive(Clone, Debug)]
pub struct Equivocate {
    selection: FaultSelection,
    split: usize,
    start: usize,
    name: Arc<str>,
}

impl Equivocate {
    /// Split recipients at `split`, equivocating from round `start`
    /// (1-based) onwards.
    pub fn new(selection: FaultSelection, split: usize, start: usize) -> Self {
        let name = Arc::from(
            format!(
                "equivocate(split={split},r>={start},{})",
                selection.describe()
            )
            .as_str(),
        );
        Equivocate {
            selection,
            split,
            start,
            name,
        }
    }
}

impl Adversary for Equivocate {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        self.name.clone()
    }

    fn reseed(&mut self, _seed: u64) -> bool {
        true
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        if view.round < self.start {
            return shadow_or_missing(view, sender);
        }
        let len = view.expected_len(sender);
        if len == 0 {
            return Payload::Missing;
        }
        let story = if recipient.index() < self.split {
            Value(0)
        } else {
            Value(1)
        };
        repeated(story, len)
    }
}

/// **Adaptive mid-run corruption**: the fault set grows at scripted
/// rounds. The engine fixes the corrupted set before round 1, so the
/// full eventual set is declared upfront and each member plays its
/// honest shadow until its activation round — the member of rank `k`
/// (ascending id order) turns at `schedule[k]`, members beyond the
/// schedule never turn. From activation on, a member tells everyone the
/// coherent flipped story (the [`Collusion`] lie), so the run looks
/// fault-free until the first activation and degrades in scripted waves.
#[derive(Clone, Debug)]
pub struct Adaptive {
    selection: FaultSelection,
    schedule: Vec<usize>,
    name: Arc<str>,
}

impl Adaptive {
    /// Corrupt the selected processors, activating the rank-`k` member
    /// at round `schedule[k]` (1-based).
    pub fn new(selection: FaultSelection, schedule: Vec<usize>) -> Self {
        let rounds: Vec<String> = schedule.iter().map(usize::to_string).collect();
        let name = Arc::from(
            format!(
                "adaptive(r=[{}],{})",
                rounds.join(","),
                selection.describe()
            )
            .as_str(),
        );
        Adaptive {
            selection,
            schedule,
            name,
        }
    }
}

impl Adversary for Adaptive {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn name_shared(&self) -> Arc<str> {
        self.name.clone()
    }

    fn reseed(&mut self, _seed: u64) -> bool {
        true
    }

    fn corrupt(&mut self, n: usize, t: usize, source: ProcessId) -> ProcessSet {
        self.selection.select(n, t, source)
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        _recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let rank = view
            .faulty
            .iter()
            .position(|p| p == sender)
            .expect("sender is faulty");
        let active = self
            .schedule
            .get(rank)
            .is_some_and(|&turn| view.round >= turn);
        if !active {
            return shadow_or_missing(view, sender);
        }
        let lie = flip(view, view.source_value);
        if view.round == 1 && sender == view.source {
            return Payload::values([lie]);
        }
        let len = view.expected_len(sender);
        if len == 0 {
            return Payload::Missing;
        }
        repeated(lie, len)
    }
}
