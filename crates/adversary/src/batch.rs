//! Vectorized fault injection for the lock-step batch engine.
//!
//! [`BatchFamily`] implements [`sg_sim::BatchAdversary`] for the six
//! binary-domain named families whose payload rules depend only on
//! constructor parameters and the current round's broadcast view —
//! never on per-call mutable state:
//!
//! | family | vector rule |
//! |---|---|
//! | `silent` | nothing, ever |
//! | `crash(r)` | shadow until round `r`, then nothing |
//! | `omission(p,ph)` | shadow, minus the periodic edge drops |
//! | `equivocate(split,s)` | shadow until `s`, then `0` below / `1` above the split |
//! | `adaptive(schedule)` | shadow until a member's turn, then the flipped story |
//! | `random-liar` | a fresh [`call_rng`] draw per (lane, edge) |
//!
//! All six choose their fault set through a seed-free
//! [`FaultSelection`], so one `select` call covers every lane
//! ([`BatchAdversary::corrupt_lanes`] materializes it into the lane
//! masks without consulting the scalar lanes at all), and all six
//! classify payloads into lane masks in one [`BatchAdversary::lies`]
//! call per round — skipping per-lane view assembly and payload
//! interning entirely. The per-lane draws of `random-liar` are the one
//! irreducibly scalar part (each lane has its own seed), but the RNG is
//! stateless per (round, sender, recipient) call, so the vector path's
//! call order is free.
//!
//! The wrapped scalar lanes stay reachable through
//! [`BatchAdversary::lane`]: mixed-width kernels (king-shift,
//! dynamic-king) collect real payload objects for their tree-prefix
//! rounds from the same pooled adversaries, with identical per-lane
//! seeds, so prefix (scalar calls) and tail (vector masks) compose
//! bit-exactly.

use sg_sim::batch::{BatchAdversary, LaneView};
use sg_sim::{Adversary, ProcessId, ProcessSet};

use crate::selection::FaultSelection;
use crate::util::call_rng;
use rand::Rng;

/// Which vector-capable family a [`BatchFamily`] plays, with the same
/// parameters as the scalar constructor it mirrors.
#[derive(Clone, Debug)]
pub enum VectorFamily {
    /// [`crate::Silent`]: never sends.
    Silent,
    /// [`crate::Crash`]: honest shadow until `crash_round`, then silent.
    Crash {
        /// First round (1-based) of permanent silence.
        crash_round: usize,
    },
    /// [`crate::RandomLiar`]: per-edge uniform in-domain lies, one seed
    /// per lane (lane order).
    RandomLiar {
        /// Per-lane RNG seeds, matching the wrapped scalar lanes.
        seeds: Vec<u64>,
    },
    /// [`crate::Omission`]: periodic per-(round, edge) drops.
    Omission {
        /// Drop period (clamped to ≥ 1, like the scalar constructor).
        period: usize,
        /// Drop phase offset.
        phase: usize,
    },
    /// [`crate::Equivocate`]: zeros below the split, ones above, from
    /// round `start` on.
    Equivocate {
        /// Recipients with ids `< split` hear the all-zeros story.
        split: usize,
        /// First equivocating round (1-based).
        start: usize,
    },
    /// [`crate::Adaptive`]: the rank-`k` member turns at `schedule[k]`.
    Adaptive {
        /// Activation rounds by fault-set rank (ascending id order).
        schedule: Vec<usize>,
    },
}

/// A batch-aware adversary for one of the [`VectorFamily`] strategies,
/// wrapping the per-lane scalar adversaries of the same family (same
/// parameters, same per-lane seeds) for the scalar-bridge duties that
/// remain: mixed-width kernels' prefix rounds.
pub struct BatchFamily<'a> {
    family: VectorFamily,
    selection: FaultSelection,
    lanes: &'a mut [Box<dyn Adversary>],
    /// The lane-shared fault set, set by `corrupt_lanes`.
    shared: Option<ProcessSet>,
}

impl<'a> BatchFamily<'a> {
    /// Wraps `lanes` (one scalar adversary per run, already seeded) with
    /// the vector rules of `family` over `selection`.
    pub fn new(
        family: VectorFamily,
        selection: FaultSelection,
        lanes: &'a mut [Box<dyn Adversary>],
    ) -> Self {
        let family = match family {
            VectorFamily::Omission { period, phase } => VectorFamily::Omission {
                period: period.max(1),
                phase,
            },
            other => other,
        };
        if let VectorFamily::RandomLiar { seeds } = &family {
            assert_eq!(seeds.len(), lanes.len(), "one seed per lane");
        }
        BatchFamily {
            family,
            selection,
            lanes,
            shared: None,
        }
    }

    /// Copies a faulty sender's honest-shadow classification to every
    /// recipient, for the lanes in `mask` — the vector form of
    /// `shadow_or_missing` (lanes outside `present` stay missing, `⊥`
    /// shadows land in neither mask).
    fn shadow(view: &LaneView<'_>, f: usize, mask: u64, net_one: &mut [u64], net_zero: &mut [u64]) {
        let n = view.n;
        let one = view.one[f] & view.present[f] & mask;
        let zero = view.zero[f] & view.present[f] & mask;
        if one == 0 && zero == 0 {
            return;
        }
        for r in 0..n {
            if r == f {
                continue;
            }
            net_one[f * n + r] |= one;
            net_zero[f * n + r] |= zero;
        }
    }

    /// Sends the constant value `v` from `f` to `r` in the lanes of
    /// `mask`, classified like the scalar `Payload::value_at(0)` match.
    #[inline]
    fn constant(
        view: &LaneView<'_>,
        f: usize,
        r: usize,
        v: u16,
        mask: u64,
        net_one: &mut [u64],
        net_zero: &mut [u64],
    ) {
        match v {
            1 => net_one[f * view.n + r] |= mask,
            0 => net_zero[f * view.n + r] |= mask,
            _ => {}
        }
    }
}

impl BatchAdversary for BatchFamily<'_> {
    fn lanes(&self) -> usize {
        self.lanes.len()
    }

    fn corrupt_lanes(
        &mut self,
        n: usize,
        t: usize,
        source: ProcessId,
        faulty: &mut [u64],
        fault_sets: &mut Vec<ProcessSet>,
    ) -> bool {
        // One seed-free selection covers every lane; the scalar lanes
        // are not consulted (their `corrupt` would return the same set),
        // which is the whole point of the vector path.
        let set = self.selection.select(n, t, source);
        assert_eq!(set.universe(), n, "selection over the wrong universe");
        let lanes = self.lanes.len();
        let all: u64 = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };
        for p in set.iter() {
            faulty[p.index()] |= all;
        }
        for _ in 0..lanes {
            fault_sets.push(set.clone());
        }
        self.shared = Some(set);
        true
    }

    fn vectorized(&self) -> bool {
        true
    }

    fn lies(&mut self, view: &LaneView<'_>, net_one: &mut [u64], net_zero: &mut [u64]) {
        let set = self
            .shared
            .as_ref()
            .expect("corrupt_lanes before the first round");
        if set.is_empty() {
            return;
        }
        let n = view.n;
        match &self.family {
            VectorFamily::Silent => {}
            VectorFamily::Crash { crash_round } => {
                if view.round < *crash_round {
                    for f in set.iter() {
                        Self::shadow(view, f.index(), view.active, net_one, net_zero);
                    }
                }
            }
            VectorFamily::Omission { period, phase } => {
                for f in set.iter() {
                    let f = f.index();
                    let one = view.one[f] & view.present[f] & view.active;
                    let zero = view.zero[f] & view.present[f] & view.active;
                    if one == 0 && zero == 0 {
                        continue;
                    }
                    for r in 0..n {
                        if r == f || (view.round + f + r + phase).is_multiple_of(*period) {
                            continue;
                        }
                        net_one[f * n + r] |= one;
                        net_zero[f * n + r] |= zero;
                    }
                }
            }
            VectorFamily::Equivocate { split, start } => {
                for f in set.iter() {
                    let f = f.index();
                    if view.round < *start {
                        Self::shadow(view, f, view.active, net_one, net_zero);
                        continue;
                    }
                    // The split stories replace the shadow at its length
                    // (single values on the narrow path), for lanes in
                    // which the shadow exists at all.
                    let mask = view.present[f] & view.active;
                    if mask == 0 {
                        continue;
                    }
                    for r in 0..n {
                        if r == f {
                            continue;
                        }
                        let story = if r < *split { 0 } else { 1 };
                        Self::constant(view, f, r, story, mask, net_one, net_zero);
                    }
                }
            }
            VectorFamily::Adaptive { schedule } => {
                let lie = ((u32::from(view.source_value.raw()) + 1) % u32::from(view.domain.size()))
                    as u16;
                for (rank, f) in set.iter().enumerate() {
                    let f = f.index();
                    let turned = schedule.get(rank).is_some_and(|&turn| view.round >= turn);
                    if !turned {
                        Self::shadow(view, f, view.active, net_one, net_zero);
                        continue;
                    }
                    // A turned source lies unconditionally in round 1
                    // (no shadow required); elsewhere the lie replaces
                    // an existing shadow.
                    let mask = if view.round == 1 && f == view.source.index() {
                        view.active
                    } else {
                        view.present[f] & view.active
                    };
                    if mask == 0 {
                        continue;
                    }
                    for r in 0..n {
                        if r != f {
                            Self::constant(view, f, r, lie, mask, net_one, net_zero);
                        }
                    }
                }
            }
            VectorFamily::RandomLiar { seeds } => {
                // Per-lane draws are unavoidable (each lane has its own
                // seed), but the per-call RNG is stateless, so the only
                // contract is (seed, round, sender, recipient) — the
                // same mix the scalar path feeds `call_rng`.
                for f in set.iter() {
                    let mask = view.present[f.index()] & view.active;
                    if mask == 0 {
                        continue;
                    }
                    for r in 0..n {
                        if r == f.index() {
                            continue;
                        }
                        let mut w = mask;
                        while w != 0 {
                            let lane = w.trailing_zeros() as usize;
                            w &= w - 1;
                            let mut rng = call_rng(seeds[lane], view.round, f, ProcessId(r));
                            let v: u16 = rng.gen_range(0..view.domain.size());
                            Self::constant(view, f.index(), r, v, 1u64 << lane, net_one, net_zero);
                        }
                    }
                }
            }
        }
    }

    fn lane(&mut self, lane: usize) -> &mut dyn Adversary {
        self.lanes[lane].as_mut()
    }
}
