//! End-to-end tests for the shift-composition framework (§6's open
//! question): every composition the builder accepts must actually reach
//! Byzantine agreement under the adversary gauntlet, at the full fault
//! bound it was validated for.

use shifting_gears::adversary::{quick_suite, standard_suite};
use shifting_gears::core::compose::{ComposeError, ShiftPlanBuilder};
use shifting_gears::core::t_a;
use shifting_gears::sim::{RunConfig, Value};

fn gauntlet(builder: ShiftPlanBuilder, n: usize, t: usize, quick: bool) {
    let composition = builder
        .build()
        .unwrap_or_else(|e| panic!("must validate: {e}"));
    let suite = if quick {
        quick_suite(0xFACE)
    } else {
        standard_suite(0xFACE)
    };
    for mut adversary in suite {
        for source_value in [Value(0), Value(1)] {
            let config = RunConfig::new(n, t).with_source_value(source_value);
            let outcome = composition.execute(&config, adversary.as_mut());
            outcome.assert_correct();
            assert_eq!(
                outcome.scheduled_rounds,
                composition.rounds(),
                "{} schedule drifted under {}",
                composition.name(),
                outcome.adversary
            );
            assert!(
                outcome.rounds_used <= outcome.scheduled_rounds,
                "{} overran its schedule under {}",
                composition.name(),
                outcome.adversary
            );
        }
    }
}

/// The paper's own hybrid shape, assembled by hand through the builder.
#[test]
fn paper_shaped_hybrid_n16() {
    gauntlet(
        ShiftPlanBuilder::new(16, 5)
            .a_blocks(3, 2)
            .b_blocks(3, 1)
            .c_tail(4),
        16,
        5,
        false,
    );
}

/// A→C directly, skipping B — a composition the paper never writes down
/// but whose safety follows from its own conditions.
#[test]
fn a_to_c_without_b_n16() {
    gauntlet(
        ShiftPlanBuilder::new(16, 5).a_blocks(4, 2).c_tail(2),
        16,
        5,
        false,
    );
}

/// Mixed block parameters across phases (wide A blocks, narrow B blocks).
#[test]
fn mixed_block_parameters_n16() {
    gauntlet(
        ShiftPlanBuilder::new(16, 5)
            .a_blocks(4, 1)
            .b_blocks(2, 2)
            .c_tail(3),
        16,
        5,
        true,
    );
}

/// A→King: unconditional closure by the optimally resilient Phase King.
#[test]
fn a_to_king_n10() {
    gauntlet(
        ShiftPlanBuilder::new(10, 3).a_blocks(3, 1).king_tail(),
        10,
        3,
        false,
    );
}

/// A→C→King: a C tail that would be conclusive anyway, then a king tail
/// on top (allowed as the one terminal chain); the king phases must
/// preserve the already-agreed value.
#[test]
fn a_to_c_to_king_n16() {
    gauntlet(
        ShiftPlanBuilder::new(16, 5)
            .a_blocks(4, 2)
            .c_tail(2)
            .king_tail(),
        16,
        5,
        true,
    );
}

/// Terminal-A composition: a single block of exactly `t` gather rounds is
/// the Exponential Algorithm with `resolve'` — conclusive on its own.
#[test]
fn terminal_a_n10() {
    gauntlet(ShiftPlanBuilder::new(10, 3).a_blocks(3, 1), 10, 3, false);
}

/// A long A prefix of minimal blocks, then a minimal C tail: the ledger
/// accumulates one detection per block.
#[test]
fn minimal_blocks_long_prefix_n13() {
    let t = t_a(13);
    gauntlet(
        ShiftPlanBuilder::new(13, t).a_blocks(3, 4).c_tail(2),
        13,
        t,
        true,
    );
}

/// Compositions within Algorithm B's own resilience may start in B
/// immediately (no ledger needed).
#[test]
fn pure_b_within_its_resilience_n21() {
    gauntlet(
        ShiftPlanBuilder::new(21, 5).b_blocks(3, 2).c_tail(3),
        21,
        5,
        true,
    );
}

/// The builder's acceptance boundary is tight around the B-entry ledger:
/// two minimal A blocks earn exactly the required detections at n = 16,
/// one does not.
#[test]
fn b_entry_boundary_is_tight() {
    // d after one A(3) block: 1 (source) + 1 = 2 — exactly the n = 16
    // requirement, so one block suffices…
    assert!(ShiftPlanBuilder::new(16, 5)
        .a_blocks(3, 1)
        .b_blocks(3, 2)
        .c_tail(3)
        .build()
        .is_ok());
    // …while jumping straight into B does not.
    let err = ShiftPlanBuilder::new(16, 5)
        .b_blocks(3, 3)
        .c_tail(3)
        .build()
        .unwrap_err();
    assert!(matches!(err, ComposeError::UnsafeShift { index: 0, .. }));
}

/// Rejected compositions stay rejected end-to-end (the error types
/// round-trip through Display without losing the reason).
#[test]
fn rejection_messages_name_the_condition() {
    let err = ShiftPlanBuilder::new(16, 5)
        .b_blocks(3, 1)
        .king_tail()
        .build()
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("unsafe shift"), "{text}");
    assert!(text.contains("Corollary 1"), "{text}");
}
