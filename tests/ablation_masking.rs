//! Ablation: the Fault Discovery + Fault Masking rules are load-bearing.
//!
//! The paper's progress argument for the shifted families (§4.1) runs
//! through global detection and masking: each block without a persistent
//! value must globally detect b−1 new faults, else the adversary can
//! stall past the schedule. This test exhibits a concrete execution in
//! which Algorithm B *without* discovery/masking violates agreement,
//! while the paper's (masked) Algorithm B survives the identical attack.

mod common;

use shifting_gears::core::plan::algorithm_b_plan;
use shifting_gears::core::{GearedProtocol, Params};
use shifting_gears::sim::{
    Inbox, Payload, ProcCtx, ProcessId, ProcessSet, Protocol, Value, ValueDomain,
};

/// Runs Algorithm B(b) with or without the discovery/masking machinery
/// against a seeded random-liar adversary (faults = P0..P(t−1), i.e. the
/// source is faulty). Returns the correct processors' decisions.
fn run_b_variant(n: usize, t: usize, b: usize, masked: bool, seed: u64) -> Vec<Value> {
    let params = Params {
        n,
        t,
        source: ProcessId(0),
        domain: ValueDomain::binary(),
    };
    let plan = algorithm_b_plan(t, b);
    let faulty = ProcessSet::from_members(n, (0..t).map(ProcessId));
    let mut protos: Vec<GearedProtocol> = (0..n)
        .map(|i| {
            let me = ProcessId(i);
            let input = (i == 0).then_some(Value(1));
            GearedProtocol::new(params, me, input, "b-variant".into(), masked, plan.clone())
        })
        .collect();
    let mut ctxs: Vec<ProcCtx> = (0..n).map(|i| ProcCtx::new(ProcessId(i))).collect();
    let mut state = seed;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let rounds = protos[0].total_rounds();
    for round in 1..=rounds {
        for c in ctxs.iter_mut() {
            c.round = round;
        }
        let bx: Vec<Option<Payload>> = (0..n).map(|i| protos[i].outgoing(&mut ctxs[i])).collect();
        for i in 0..n {
            let mut inbox = Inbox::empty(n);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let s = ProcessId(j);
                let payload = if faulty.contains(s) {
                    // Honest-shaped payloads with random bits; the faulty
                    // source also fabricates its round-1 broadcast.
                    let base = bx[j].as_ref().map_or(0, Payload::num_values);
                    let len = base.max(usize::from(j == 0 && round == 1));
                    if len == 0 {
                        Payload::Missing
                    } else {
                        Payload::Values((0..len).map(|_| Value((rnd() % 2) as u16)).collect())
                    }
                } else {
                    bx[j].clone().unwrap_or(Payload::Missing)
                };
                inbox.set(s, payload);
            }
            protos[i].deliver(&inbox, &mut ctxs[i]);
        }
    }
    (0..n)
        .filter(|i| !faulty.contains(ProcessId(*i)))
        .map(|i| protos[i].decide(&mut ctxs[i]))
        .collect()
}

/// Discovered by seed scan: without masking, this execution splits the
/// correct processors' decisions.
const BREAKING: (usize, usize, usize, u64) = (13, 3, 2, 51);

#[test]
fn unmasked_algorithm_b_violates_agreement() {
    let (n, t, b, seed) = BREAKING;
    let decisions = run_b_variant(n, t, b, false, seed);
    assert!(
        decisions.windows(2).any(|w| w[0] != w[1]),
        "expected the pinned counterexample to disagree; got {decisions:?} \
         (if the protocol implementation changed, re-run the seed scan)"
    );
}

#[test]
fn masked_algorithm_b_survives_the_identical_attack() {
    let (n, t, b, seed) = BREAKING;
    let decisions = run_b_variant(n, t, b, true, seed);
    assert!(
        decisions.windows(2).all(|w| w[0] == w[1]),
        "masked Algorithm B must agree: {decisions:?}"
    );
}

#[test]
fn masked_algorithm_b_survives_a_seed_scan() {
    let (n, t, b, _) = BREAKING;
    for seed in 0..100u64 {
        let decisions = run_b_variant(n, t, b, true, seed);
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "masked Algorithm B disagreed at seed {seed}: {decisions:?}"
        );
    }
}
