//! Shared test harness: drives `GearedProtocol` instances directly (the
//! engine's loop, but with full access to every processor's internal
//! state) so tests can check the paper's lemmas on live trees and fault
//! lists mid-execution.

use shifting_gears::core::plan::ConvertSpec;
use shifting_gears::core::{AlgorithmSpec, GearedProtocol, Params, RoundAction};
use shifting_gears::sim::{
    Inbox, Payload, ProcCtx, ProcessId, ProcessSet, Protocol, Value, ValueDomain,
};

/// Whether `p` carries a positional value vector ([`Payload::Values`] or
/// the bit-packed [`Payload::Bits`] — test adversaries must treat the two
/// identically, like real receivers do).
#[allow(dead_code)]
pub fn is_vector(p: &Payload) -> bool {
    matches!(p, Payload::Values(_) | Payload::Bits { .. })
}

/// Materializes a payload's positional values, representation-agnostic.
#[allow(dead_code)]
pub fn payload_values(p: &Payload) -> Vec<Value> {
    (0..p.num_values())
        .map(|i| p.value_at(i).expect("index in range"))
        .collect()
}

/// The domain-flipped copy of a binary vector payload.
#[allow(dead_code)]
pub fn flip_values(p: &Payload) -> Payload {
    Payload::Values(
        payload_values(p)
            .into_iter()
            .map(|v| Value(1 - v.raw()))
            .collect(),
    )
}

/// The faulty payload chosen by a test adversary closure, given the round,
/// sender, recipient and the sender's honest shadow payload.
pub type TestAdversary<'a> =
    dyn FnMut(usize, ProcessId, ProcessId, Option<&Payload>) -> Payload + 'a;

/// An inspectable in-test network of `GearedProtocol` instances.
pub struct TestNet {
    /// Fault bound (kept for diagnostics in assertion messages).
    #[allow(dead_code)]
    pub t: usize,
    /// The corrupted set.
    pub faulty: ProcessSet,
    /// All processor instances (faulty slots double as honest shadows).
    pub protocols: Vec<GearedProtocol>,
    ctxs: Vec<ProcCtx>,
    /// Rounds executed so far.
    pub round: usize,
}

#[allow(dead_code)]
impl TestNet {
    /// Builds a network running `spec` with source `P0` holding
    /// `source_value` and the given corrupted set.
    pub fn new(
        spec: AlgorithmSpec,
        n: usize,
        t: usize,
        source_value: Value,
        faulty: ProcessSet,
    ) -> TestNet {
        TestNet::build(spec, n, t, source_value, faulty, false)
    }

    /// Like [`TestNet::new`], but strips the *final* round's conversion
    /// so tests can inspect the fully gathered tree (the paper's lemmas
    /// quantify over the pre-conversion tree). Do not call `decide` on an
    /// inspectable net — convert manually instead.
    pub fn new_inspectable(
        spec: AlgorithmSpec,
        n: usize,
        t: usize,
        source_value: Value,
        faulty: ProcessSet,
    ) -> TestNet {
        TestNet::build(spec, n, t, source_value, faulty, true)
    }

    fn build(
        spec: AlgorithmSpec,
        n: usize,
        t: usize,
        source_value: Value,
        faulty: ProcessSet,
        strip_final_convert: bool,
    ) -> TestNet {
        spec.validate(n, t).expect("valid spec");
        let params = Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        };
        let mut plan = spec.plan(n, t).expect("tree algorithm");
        if strip_final_convert {
            if let Some(RoundAction::Gather { convert }) = plan.last_mut() {
                *convert = None::<ConvertSpec>;
            }
        }
        let modified = spec != AlgorithmSpec::PlainExponential;
        let protocols: Vec<GearedProtocol> = (0..n)
            .map(|i| {
                let me = ProcessId(i);
                let input = (me == params.source).then_some(source_value);
                GearedProtocol::new(params, me, input, spec.name(), modified, plan.clone())
            })
            .collect();
        let ctxs = (0..n).map(|i| ProcCtx::new(ProcessId(i))).collect();
        TestNet {
            t,
            faulty,
            protocols,
            ctxs,
            round: 0,
        }
    }

    /// Total rounds of the schedule.
    pub fn total_rounds(&self) -> usize {
        self.protocols[0].total_rounds()
    }

    /// The number of processors.
    pub fn n(&self) -> usize {
        self.protocols.len()
    }

    /// Ids of the correct processors.
    pub fn correct(&self) -> Vec<ProcessId> {
        (0..self.n())
            .map(ProcessId)
            .filter(|p| !self.faulty.contains(*p))
            .collect()
    }

    /// Executes one round, with faulty payloads chosen by `adversary`.
    pub fn step(&mut self, adversary: &mut TestAdversary<'_>) {
        let n = self.n();
        self.round += 1;
        for ctx in &mut self.ctxs {
            ctx.round = self.round;
        }
        // Everyone's would-be broadcast (shadows included).
        let broadcasts: Vec<Option<Payload>> = (0..n)
            .map(|i| self.protocols[i].outgoing(&mut self.ctxs[i]))
            .collect();
        for i in 0..n {
            let mut inbox = Inbox::empty(n);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let sender = ProcessId(j);
                let payload = if self.faulty.contains(sender) {
                    adversary(self.round, sender, ProcessId(i), broadcasts[j].as_ref())
                } else {
                    broadcasts[j].clone().unwrap_or(Payload::Missing)
                };
                inbox.set(sender, payload);
            }
            self.protocols[i].deliver(&inbox, &mut self.ctxs[i]);
        }
    }

    /// Runs all remaining rounds.
    pub fn run_all(&mut self, adversary: &mut TestAdversary<'_>) {
        while self.round < self.total_rounds() {
            self.step(adversary);
        }
    }

    /// Decisions of the correct processors (faulty slots are `None`).
    pub fn decide(&mut self) -> Vec<Option<Value>> {
        (0..self.n())
            .map(|i| {
                (!self.faulty.contains(ProcessId(i)))
                    .then(|| self.protocols[i].decide(&mut self.ctxs[i]))
            })
            .collect()
    }

    /// Asserts agreement (and validity when the source is correct,
    /// against `source_value`).
    pub fn assert_correct(&mut self, source_value: Value) {
        let decisions = self.decide();
        let correct_decisions: Vec<Value> = decisions.iter().flatten().copied().collect();
        assert!(
            correct_decisions.windows(2).all(|w| w[0] == w[1]),
            "agreement violated: {decisions:?}"
        );
        if !self.faulty.contains(ProcessId(0)) {
            assert!(
                correct_decisions.iter().all(|v| *v == source_value),
                "validity violated: {decisions:?}"
            );
        }
    }
}

/// An adversary closure that behaves perfectly honestly (useful as a base
/// case and for composing).
#[allow(dead_code)]
pub fn honest_adversary() -> impl FnMut(usize, ProcessId, ProcessId, Option<&Payload>) -> Payload {
    |_round, _sender, _recipient, shadow| shadow.cloned().unwrap_or(Payload::Missing)
}
