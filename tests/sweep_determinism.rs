//! Determinism guarantees of the parallel sweep engine and the engine's
//! arena recycling.
//!
//! The sweep engine's contract is that worker count is *unobservable* in
//! the output: a seeded [`SweepPlan`] produces bit-identical
//! [`SweepReport`]s at `--jobs 1` and `--jobs 8`, because every run's
//! seed is a pure function of its grid coordinates and results are
//! collected in grid order. The engine's contract is that [`RunArena`]
//! recycling (the thread-local pool behind `engine::run`) never leaks
//! state between consecutive runs.

use shifting_gears::adversary::{FaultSelection, RandomLiar};
use shifting_gears::analysis::{AdversaryFamily, SweepConfig, SweepPlan};
use shifting_gears::core::{execute, AlgorithmSpec};
use shifting_gears::sim::{run_in, NoFaults, RunArena, RunConfig, Value};

fn grid() -> SweepPlan {
    SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 10, 3),
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::with_source()),
            AdversaryFamily::chain_revealer(FaultSelection::without_source(), 2, 2),
        ],
        5,
    )
}

/// The tentpole guarantee: `--jobs 1` and `--jobs 8` produce the same
/// bytes — every sample of every cell, not just the summaries.
#[test]
fn sweep_report_is_bit_identical_across_job_counts() {
    let serial = grid().run_with_jobs(1);
    let parallel = grid().run_with_jobs(8);
    assert_eq!(serial, parallel);
    assert_eq!(serial.total_runs, 20);
    // And re-running serially reproduces itself (the plan is a pure
    // function of its coordinates).
    assert_eq!(serial, grid().run_with_jobs(1));
}

/// Seeds depend on grid coordinates only, so *reordering the grid* moves
/// cells around but never changes a cell's samples.
#[test]
fn cell_results_do_not_depend_on_grid_position_of_other_cells() {
    let full = grid().run_with_jobs(2);
    let single = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 10, 3)],
        vec![AdversaryFamily::random_liar(FaultSelection::with_source())],
        5,
    )
    .run_with_jobs(2);
    // Cell (0, 0) of the full grid has coordinates (0, 0) in both plans,
    // hence the same seed stream and the same samples.
    assert_eq!(full.cells[0].samples, single.cells[0].samples);
    assert_eq!(full.cells[0].summaries, single.cells[0].summaries);
}

/// Arena recycling must not leak trace state: a traced run followed by an
/// untraced run on the same thread (hence the same pooled arena) yields
/// an empty trace for the second run.
#[test]
fn arena_reuse_does_not_leak_traces_between_runs() {
    let traced_config = RunConfig::new(10, 3)
        .with_source_value(Value(1))
        .with_trace();
    let mut adversary = RandomLiar::new(FaultSelection::with_source(), 7);
    let traced = execute(
        AlgorithmSpec::Hybrid { b: 3 },
        &traced_config,
        &mut adversary,
    )
    .unwrap();
    assert!(
        !traced.trace.entries().is_empty(),
        "run A (traced) must record events"
    );

    let untraced_config = RunConfig::new(10, 3).with_source_value(Value(1));
    let mut adversary = RandomLiar::new(FaultSelection::with_source(), 7);
    let untraced = execute(
        AlgorithmSpec::Hybrid { b: 3 },
        &untraced_config,
        &mut adversary,
    )
    .unwrap();
    assert!(
        untraced.trace.entries().is_empty(),
        "run B (untraced) must not inherit run A's trace"
    );

    // Everything except the trace matches: arena reuse changed nothing.
    assert_eq!(traced.decisions, untraced.decisions);
    assert_eq!(traced.faulty, untraced.faulty);
    assert_eq!(traced.metrics.per_round, untraced.metrics.per_round);
}

/// Explicitly holding one arena across many heterogeneous runs (different
/// n, different protocols, traced and untraced) reproduces the outcomes
/// of fresh-arena runs exactly.
#[test]
fn one_arena_reused_across_heterogeneous_runs_matches_fresh_runs() {
    let cases = [
        (AlgorithmSpec::Exponential, 7, 2, true),
        (AlgorithmSpec::OptimalKing, 13, 4, false),
        (AlgorithmSpec::Exponential, 4, 1, false),
        (AlgorithmSpec::Hybrid { b: 3 }, 10, 3, true),
    ];
    let mut arena = RunArena::new();
    for (spec, n, t, trace) in cases {
        let mut config = RunConfig::new(n, t).with_source_value(Value(1));
        if trace {
            config = config.with_trace();
        }
        // Reference run through the pooled path.
        let mut adversary = RandomLiar::new(FaultSelection::with_source(), 42);
        let fresh = execute(spec, &config, &mut adversary).unwrap();
        // Same run through the shared, explicitly reused arena.
        let mut adversary = RandomLiar::new(FaultSelection::with_source(), 42);
        let reused = run_in(&mut arena, &config, &mut adversary, spec.factory(&config));
        assert_eq!(fresh.decisions, reused.decisions);
        assert_eq!(fresh.faulty, reused.faulty);
        assert_eq!(fresh.metrics, reused.metrics);
        assert_eq!(fresh.trace, reused.trace);
        assert_eq!(fresh.rounds_used, reused.rounds_used);
    }
}

/// The fault-free baseline also survives arena recycling bit-for-bit
/// (exercises the interned missing-payload path end to end).
#[test]
fn fault_free_runs_are_stable_under_recycling() {
    let config = RunConfig::new(16, 5).with_source_value(Value(1));
    let first = execute(AlgorithmSpec::OptimalKing, &config, &mut NoFaults).unwrap();
    for _ in 0..3 {
        let again = execute(AlgorithmSpec::OptimalKing, &config, &mut NoFaults).unwrap();
        assert_eq!(first.decisions, again.decisions);
        assert_eq!(first.metrics, again.metrics);
    }
    assert_eq!(first.decision(), Some(Value(1)));
}
