//! Early stopping is an *optimization*, never a semantic change: for
//! every protocol family × adversary (including the actual-fault-budget
//! scenarios with `f_actual < t`), the early-stopped run must decide the
//! same values as the same-seed run with early stopping disabled —
//! agreement and validity preserved — while never overrunning the static
//! schedule. Fault-free (`f = 0`) runs of the early-stopping families
//! must *strictly* undercut their schedules: that saving is the paper's
//! expedite thesis made measurable.
//!
//! Also pinned here: the sweep engine's adversary pool
//! (`Adversary::reseed`) is unobservable — pooled-warm, pooled-cold and
//! fresh (`set_instance_pooling(false)`) sweeps produce bit-identical
//! reports.

use std::sync::Mutex;

use proptest::prelude::*;
use shifting_gears::adversary::{
    ChainRevealer, Crash, FaultSelection, RandomLiar, Silent, TwoFaced,
};
use shifting_gears::analysis::{AdversaryFamily, SweepConfig, SweepPlan};
use shifting_gears::core::{execute, AlgorithmSpec};
use shifting_gears::sim::{
    set_early_stopping, set_instance_pooling, Adversary, NoFaults, Outcome, RunConfig, Value,
};

/// Serializes the tests in this file: they drive the process-global
/// `set_early_stopping` / `set_instance_pooling` toggles.
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

/// One strategy instance; `f` caps the actual fault count (`None` = the
/// full budget `t`).
fn adversary(idx: usize, seed: u64, f: Option<usize>) -> Box<dyn Adversary> {
    let cap = |sel: FaultSelection| match f {
        Some(f) => sel.limit(f),
        None => sel,
    };
    match idx {
        0 => Box::new(NoFaults),
        1 => Box::new(RandomLiar::new(cap(FaultSelection::with_source()), seed)),
        2 => Box::new(TwoFaced::new(cap(FaultSelection::without_source()))),
        3 => Box::new(ChainRevealer::new(
            cap(FaultSelection::without_source()),
            2,
            2,
            seed,
        )),
        // The new crash-early / go-silent scenario families.
        4 => Box::new(Crash::new(cap(FaultSelection::without_source()), 2)),
        _ => Box::new(Silent::new(cap(FaultSelection::without_source()))),
    }
}

/// Runs `spec` twice with the same adversary construction — early
/// stopping on, then off — and returns both outcomes.
fn run_pair(
    spec: AlgorithmSpec,
    n: usize,
    t: usize,
    mk_adversary: &dyn Fn() -> Box<dyn Adversary>,
) -> (Outcome, Outcome) {
    let config = RunConfig::new(n, t)
        .with_source_value(Value(1))
        .with_trace();
    let expedited = execute(spec, &config, mk_adversary().as_mut())
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
    set_early_stopping(false);
    let fixed = execute(spec, &config, mk_adversary().as_mut())
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
    set_early_stopping(true);
    (expedited, fixed)
}

/// The core equivalence: same decisions, same fault set, schedule
/// respected, and the expedited metrics are a round-prefix of the fixed
/// run's.
fn check_equivalence(
    label: &str,
    spec: AlgorithmSpec,
    n: usize,
    t: usize,
    expedited: &Outcome,
    fixed: &Outcome,
) {
    assert_eq!(expedited.faulty, fixed.faulty, "{label}: fault set");
    assert_eq!(
        expedited.decisions, fixed.decisions,
        "{label}: early stopping changed a decision"
    );
    expedited.assert_correct();
    fixed.assert_correct();
    assert_eq!(expedited.validity(), fixed.validity(), "{label}: validity");

    assert_eq!(fixed.scheduled_rounds, spec.rounds(n, t), "{label}");
    assert_eq!(fixed.rounds_used, fixed.scheduled_rounds, "{label}");
    assert!(!fixed.early_stopped, "{label}");
    assert_eq!(
        expedited.scheduled_rounds, fixed.scheduled_rounds,
        "{label}"
    );
    assert!(
        expedited.rounds_used <= expedited.scheduled_rounds,
        "{label}: overran the schedule"
    );
    assert_eq!(
        expedited.early_stopped,
        expedited.rounds_used < expedited.scheduled_rounds,
        "{label}"
    );

    // Up to the stopping round the executions are identical, so the
    // expedited per-round metrics are exactly a prefix of the fixed ones.
    assert_eq!(
        expedited.metrics.per_round[..],
        fixed.metrics.per_round[..expedited.rounds_used],
        "{label}: metrics diverged before the stopping round"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every early-stopping family plus a tree baseline, the adversary
    /// sample (including crash/silent), and actual fault budgets
    /// `f ∈ {0, 1, t}`: expedited and fixed-length runs decide
    /// identically.
    #[test]
    fn early_stopped_runs_decide_like_fixed_runs(
        seed in 0u64..1_000,
        adv_idx in 0usize..6,
        f_sel in 0usize..3,
    ) {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cases = [
            (AlgorithmSpec::PhaseKing, 9, 2),
            (AlgorithmSpec::PhaseQueen, 9, 2),
            (AlgorithmSpec::OptimalKing, 7, 2),
            (AlgorithmSpec::KingShift { b: 3 }, 10, 3),
            (AlgorithmSpec::DolevStrong, 5, 3),
            // Tree baseline: no status hook, must never stop early.
            (AlgorithmSpec::Exponential, 7, 2),
        ];
        for (spec, n, t) in cases {
            let f = [Some(0), Some(1), None][f_sel].map(|f| f.min(t));
            let mk = || adversary(adv_idx, seed, f);
            let (expedited, fixed) = run_pair(spec, n, t, &mk);
            let label = format!("{} adv={adv_idx} f={f:?} seed={seed}", spec.name());
            check_equivalence(&label, spec, n, t, &expedited, &fixed);
            if matches!(spec, AlgorithmSpec::Exponential) {
                prop_assert!(!expedited.early_stopped, "{label}: tree machine stopped early");
            }
        }
    }
}

/// The expedite thesis, concretely: with zero actual faults the
/// early-stopping families finish strictly below their schedules —
/// Dolev–Strong by the quiescence rule (`min(f+2, t+1)` with `f = 0`),
/// the king family one propose step after the source round.
#[test]
fn fault_free_runs_strictly_undercut_their_schedules() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cases = [
        (AlgorithmSpec::DolevStrong, 5, 3, 2),         // t+1 = 4 → 2
        (AlgorithmSpec::OptimalKing, 16, 5, 3),        // 3t+4 = 19 → 3
        (AlgorithmSpec::PhaseKing, 16, 3, 3),          // 2t+3 = 9 → 3
        (AlgorithmSpec::PhaseQueen, 16, 3, 3),         // 2t+3 = 9 → 3
        (AlgorithmSpec::KingShift { b: 3 }, 16, 5, 6), // 1+b+3(t+1) = 22 → 6
    ];
    for (spec, n, t, expect) in cases {
        let config = RunConfig::new(n, t).with_source_value(Value(1));
        let outcome = execute(spec, &config, &mut NoFaults).unwrap();
        outcome.assert_correct();
        assert!(
            outcome.rounds_used < outcome.scheduled_rounds,
            "{}: no expedite at f = 0",
            spec.name()
        );
        assert_eq!(outcome.rounds_used, expect, "{}", spec.name());
        assert!(outcome.early_stopped, "{}", spec.name());
        assert_eq!(
            outcome.rounds_saved(),
            outcome.scheduled_rounds - expect,
            "{}",
            spec.name()
        );
    }
}

/// The acceptance workload: an `f_actual = 0` sweep shows `mean_rounds`
/// strictly below the schedule for Dolev–Strong and the king family,
/// with a 100% early-stop rate, while the tree families hold their full
/// schedules in the same grid.
#[test]
fn fault_budget_sweep_records_the_expedite_win() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::DolevStrong, 5, 3),
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 16, 5),
            SweepConfig::traced(AlgorithmSpec::Exponential, 7, 2),
        ],
        vec![
            // f_actual = 0 spelled two ways: an empty crash selection and
            // the fault-free family.
            AdversaryFamily::crash(FaultSelection::without_source().limit(0), 2),
            AdversaryFamily::no_faults(),
        ],
        5,
    );
    let report = plan.run_with_jobs(1);
    for cell in &report.cells {
        let rounds = &cell.summaries[4];
        let schedule = match cell.spec_name.as_str() {
            "dolev-strong" => AlgorithmSpec::DolevStrong.rounds(cell.n, cell.t),
            "optimal-king" => AlgorithmSpec::OptimalKing.rounds(cell.n, cell.t),
            _ => AlgorithmSpec::Exponential.rounds(cell.n, cell.t),
        } as u64;
        if cell.spec_name == "exponential" {
            assert_eq!(rounds.max, schedule, "trees run their full schedule");
            assert!((cell.early_stop_rate - 0.0).abs() < f64::EPSILON);
        } else {
            assert!(
                rounds.mean < schedule as f64,
                "{}: mean rounds {} not below schedule {schedule}",
                cell.spec_name,
                rounds.mean
            );
            assert!((cell.early_stop_rate - 1.0).abs() < f64::EPSILON);
            // The rendered row carries the new columns.
            let line = cell.render_line();
            assert!(line.contains("rounds"), "{line}");
            assert!(line.contains("early-stop 100%"), "{line}");
        }
    }
}

/// The adversary pool is unobservable: a warm pooled sweep, a second
/// (reseed-recycled) pooled sweep and a fresh sweep with pooling
/// disabled all produce bit-identical reports.
#[test]
fn adversary_reseed_pooling_is_bit_identical() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::with_source()),
            AdversaryFamily::chain_revealer(FaultSelection::without_source().limit(1), 2, 2),
            AdversaryFamily::crash(FaultSelection::without_source(), 3),
            AdversaryFamily::silent(FaultSelection::without_source().limit(1)),
            AdversaryFamily::no_faults(),
        ],
        4,
    );
    // Sequential so both passes share one thread's adversary pool: the
    // first pass seeds it, the second runs entirely on reseeds.
    let cold = plan.run_with_jobs(1);
    let warm = plan.run_with_jobs(1);
    assert_eq!(cold, warm, "reseed-recycled sweep diverged");

    set_instance_pooling(false);
    let fresh = plan.run_with_jobs(1);
    set_instance_pooling(true);
    assert_eq!(cold, fresh, "pooled and fresh sweeps diverged");
}

/// `rounds_used` equality at the schedule: with early stopping disabled
/// every run reports exactly its schedule, for every family × adversary.
#[test]
fn fixed_length_mode_reports_full_schedules() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_early_stopping(false);
    for (spec, n, t) in [
        (AlgorithmSpec::OptimalKing, 7, 2),
        (AlgorithmSpec::DolevStrong, 5, 3),
    ] {
        for adv_idx in 0..6 {
            let config = RunConfig::new(n, t).with_source_value(Value(1));
            let outcome = execute(spec, &config, adversary(adv_idx, 7, None).as_mut()).unwrap();
            assert_eq!(outcome.rounds_used, spec.rounds(n, t), "{}", spec.name());
            assert!(!outcome.early_stopped);
        }
    }
    set_early_stopping(true);
}
