//! Exhaustive small-system sweep ("model checking lite").
//!
//! For n = 4, t = 1 — the smallest system the paper admits — we enumerate
//! *every* adversary behaviour from a structured space: one faulty
//! processor (each of the four, including the source), both source
//! values, and an independent choice per (round, recipient) among five
//! payload transformations (silent, all-zeros, all-ones, honest,
//! flipped). That is 5^6 behaviour vectors × 4 fault positions × 2 source
//! values × 3 algorithm variants ≈ 750k executions, each checked for
//! agreement and validity.
//!
//! This covers every strategy expressible in the space — in particular
//! all recipient-dependent equivocation patterns — so a pass here is an
//! exhaustiveness result, not a sample.

mod common;

use common::TestNet;
use shifting_gears::core::AlgorithmSpec;
use shifting_gears::sim::{Payload, ProcessId, ProcessSet, Value};

const CHOICES: usize = 5;

/// Applies behaviour `c` to the faulty processor's honest shadow.
fn apply(c: usize, shadow: Option<&Payload>, round1_source: bool) -> Payload {
    // A faulty source must have the option of sending *something* in
    // round 1 even though len would otherwise be derived from a shadow.
    let len = shadow.map_or(usize::from(round1_source), Payload::num_values);
    match c {
        0 => Payload::Missing,
        1 => Payload::Values(vec![Value(0); len]),
        2 => Payload::Values(vec![Value(1); len]),
        3 => shadow.cloned().unwrap_or(Payload::Missing),
        4 => match shadow {
            Some(p) if common::is_vector(p) => common::flip_values(p),
            _ => Payload::Values(vec![Value(1); len]),
        },
        _ => unreachable!(),
    }
}

/// Enumerates the behaviour vectors in `codes` for one (spec, faulty,
/// source value) — one work unit of the exhaustive sweep.
fn sweep_chunk(
    spec: AlgorithmSpec,
    faulty_id: usize,
    source_value: Value,
    codes: std::ops::Range<usize>,
) {
    let n = 4;
    let t = 1;
    let rounds = spec.rounds(n, t);
    assert_eq!(rounds, 2, "n=4, t=1 exponential variants run 2 rounds");
    // Choice index per (round, recipient≠faulty): 2 rounds × 3 recipients.
    let slots = rounds * (n - 1);
    for code in codes {
        let faulty = ProcessSet::from_members(n, [ProcessId(faulty_id)]);
        let mut net = TestNet::new(spec, n, t, source_value, faulty);
        let mut digits = code;
        let mut choice = vec![0usize; slots];
        for slot in choice.iter_mut() {
            *slot = digits % CHOICES;
            digits /= CHOICES;
        }
        net.run_all(&mut |round, sender, recipient, shadow: Option<&Payload>| {
            // Map recipient to a dense 0..3 slot index (skipping sender).
            let mut r_idx = recipient.index();
            if r_idx > sender.index() {
                r_idx -= 1;
            }
            let slot = (round - 1) * (n - 1) + r_idx;
            apply(choice[slot], shadow, round == 1 && sender == ProcessId(0))
        });
        let decisions = net.decide();
        let got: Vec<Value> = decisions.iter().flatten().copied().collect();
        assert!(
            got.windows(2).all(|w| w[0] == w[1]),
            "{}: agreement violated (faulty P{faulty_id}, v={source_value}, code={code}): {decisions:?}",
            spec.name()
        );
        if faulty_id != 0 {
            assert!(
                got.iter().all(|v| *v == source_value),
                "{}: validity violated (faulty P{faulty_id}, v={source_value}, code={code}): {decisions:?}",
                spec.name()
            );
        }
    }
}

/// Fans the full `(faulty, source value, behaviour code)` space of `spec`
/// out over the sweep engine: every fault position, both source values,
/// all 5^6 behaviour vectors, in chunks sized for the worker pool.
fn sweep_exhaustive(spec: AlgorithmSpec) {
    const SLOTS: u32 = 2 * 3; // rounds × recipients at n = 4, t = 1
    let total = CHOICES.pow(SLOTS);
    let chunk = total.div_ceil(32).max(1);
    let mut cells: Vec<(usize, Value, std::ops::Range<usize>)> = Vec::new();
    for faulty in 0..4 {
        for v in [Value(0), Value(1)] {
            for start in (0..total).step_by(chunk) {
                cells.push((faulty, v, start..(start + chunk).min(total)));
            }
        }
    }
    shifting_gears::analysis::sweep_map(cells, move |(faulty, v, codes)| {
        sweep_chunk(spec, faulty, v, codes)
    });
}

#[test]
fn exhaustive_exponential_n4_t1() {
    sweep_exhaustive(AlgorithmSpec::Exponential);
}

#[test]
fn exhaustive_exponential_prime_n4_t1() {
    sweep_exhaustive(AlgorithmSpec::ExponentialPrime);
}

#[test]
fn exhaustive_plain_exponential_n4_t1() {
    // The unmodified PSL-style algorithm is also correct at full
    // resilience — discovery/masking matter for the *shifted* families'
    // progress, not for the one-shot exponential run.
    sweep_exhaustive(AlgorithmSpec::PlainExponential);
}
