//! Integration tests for the optimally resilient Phase King and the
//! A→King shift hybrid (the §5/§6 extensions).
//!
//! Both run at the full `⌊(n−1)/3⌋` resilience of Algorithm A, so they
//! face the same gauntlet the paper's own algorithms face, at the same
//! parameters.

use shifting_gears::adversary::{
    quick_suite, standard_suite, EquivocatingSource, FaultSelection, RandomLiar, TwoFaced,
};
use shifting_gears::core::{execute, t_a, AlgorithmSpec, SpecError};
use shifting_gears::sim::{RunConfig, Value};

fn gauntlet(spec: AlgorithmSpec, n: usize, t: usize, quick: bool) {
    let suite = if quick {
        quick_suite(0x516)
    } else {
        standard_suite(0x516)
    };
    for mut adversary in suite {
        for source_value in [Value(0), Value(1)] {
            let config = RunConfig::new(n, t).with_source_value(source_value);
            let outcome = execute(spec, &config, adversary.as_mut())
                .unwrap_or_else(|e| panic!("{} invalid: {e}", spec.name()));
            outcome.assert_correct();
            assert_eq!(
                outcome.scheduled_rounds,
                spec.rounds(n, t),
                "{} schedule drifted under {}",
                spec.name(),
                outcome.adversary
            );
            assert!(
                outcome.rounds_used <= outcome.scheduled_rounds,
                "{} overran its schedule under {}",
                spec.name(),
                outcome.adversary
            );
        }
    }
}

#[test]
fn optimal_king_n4_t1() {
    gauntlet(AlgorithmSpec::OptimalKing, 4, 1, false);
}

#[test]
fn optimal_king_n7_t2() {
    gauntlet(AlgorithmSpec::OptimalKing, 7, 2, false);
}

#[test]
fn optimal_king_n10_t3() {
    gauntlet(AlgorithmSpec::OptimalKing, 10, 3, true);
}

#[test]
fn optimal_king_n13_t4() {
    gauntlet(AlgorithmSpec::OptimalKing, 13, 4, true);
}

#[test]
fn king_shift_n4_t1() {
    gauntlet(AlgorithmSpec::KingShift { b: 3 }, 4, 1, false);
}

#[test]
fn king_shift_n7_t2() {
    gauntlet(AlgorithmSpec::KingShift { b: 3 }, 7, 2, false);
}

#[test]
fn king_shift_n10_t3() {
    gauntlet(AlgorithmSpec::KingShift { b: 3 }, 10, 3, true);
}

#[test]
fn king_shift_n13_t4_wide_block() {
    gauntlet(AlgorithmSpec::KingShift { b: 4 }, 13, 4, true);
}

/// Both extensions claim Algorithm A's full resilience: exactly
/// `t_A = ⌊(n−1)/3⌋`, no more.
#[test]
fn king_resilience_matches_algorithm_a() {
    for n in [4usize, 7, 10, 16, 31] {
        let t = t_a(n);
        assert!(AlgorithmSpec::OptimalKing.validate(n, t).is_ok(), "n={n}");
        assert!(matches!(
            AlgorithmSpec::OptimalKing.validate(n, t + 1),
            Err(SpecError::ResilienceExceeded { .. })
        ));
        assert!(AlgorithmSpec::KingShift { b: 3 }.validate(n, t).is_ok());
        assert!(matches!(
            AlgorithmSpec::KingShift { b: 3 }.validate(n, t + 1),
            Err(SpecError::ResilienceExceeded { .. })
        ));
    }
    assert!(matches!(
        AlgorithmSpec::KingShift { b: 2 }.validate(16, 5),
        Err(SpecError::BadBlockParameter { .. })
    ));
}

/// Messages stay O(1) values in the king phases: the largest message any
/// honest processor sends in a king round carries exactly one value, so
/// the maximum over the whole run is set by the A prefix (for the shift)
/// or is 1 (for pure Phase King).
#[test]
fn optimal_king_messages_are_constant_size() {
    let config = RunConfig::new(13, 4);
    let mut adversary = TwoFaced::new(FaultSelection::without_source());
    let outcome = execute(AlgorithmSpec::OptimalKing, &config, &mut adversary).unwrap();
    outcome.assert_correct();
    let max = outcome
        .metrics
        .per_round
        .iter()
        .map(|r| r.max_message_values)
        .max()
        .unwrap();
    assert_eq!(max, 1, "king messages must carry exactly one value");
}

/// The king-shift's large messages are confined to the A block; every
/// round after the shift carries one value.
#[test]
fn king_shift_big_messages_confined_to_prefix() {
    let n = 13;
    let t = 4;
    let b = 3;
    let config = RunConfig::new(n, t);
    let mut adversary = RandomLiar::new(FaultSelection::without_source(), 7);
    let outcome = execute(AlgorithmSpec::KingShift { b }, &config, &mut adversary).unwrap();
    outcome.assert_correct();
    let prefix = 1 + b.min(t);
    for stats in &outcome.metrics.per_round {
        if stats.round > prefix {
            assert!(
                stats.max_message_values <= 1,
                "round {} carried {} values after the shift",
                stats.round,
                stats.max_message_values
            );
        }
    }
}

/// Persistence across the shift: with a *correct* source, every correct
/// processor's decision equals the source value even while the maximum
/// number of non-source processors misbehave — the Strong Persistence
/// Lemma handed to the king phases.
#[test]
fn king_shift_preserves_persistence_across_shift() {
    for n in [7usize, 10, 13, 16] {
        let t = t_a(n);
        for seed in 0..5u64 {
            let config = RunConfig::new(n, t).with_source_value(Value(1));
            let mut adversary = RandomLiar::new(FaultSelection::without_source(), seed);
            let outcome =
                execute(AlgorithmSpec::KingShift { b: 3 }, &config, &mut adversary).unwrap();
            outcome.assert_correct();
            assert_eq!(outcome.decision(), Some(Value(1)), "n={n} seed={seed}");
        }
    }
}

/// A faulty, equivocating source cannot break agreement in either
/// extension (the hardest validity-free case).
#[test]
fn equivocating_source_cannot_split_kings() {
    for spec in [
        AlgorithmSpec::OptimalKing,
        AlgorithmSpec::KingShift { b: 3 },
    ] {
        let config = RunConfig::new(10, 3);
        let mut adversary = EquivocatingSource::new(FaultSelection::with_source());
        let outcome = execute(spec, &config, &mut adversary).unwrap();
        assert!(
            outcome.faulty.contains(config.source),
            "the adversary must corrupt the source"
        );
        outcome.assert_correct();
    }
}

/// Round counts: OptimalKing runs `3t + 4`; KingShift runs
/// `1 + min(b,t) + 3(t+1)`.
#[test]
fn round_formulas() {
    assert_eq!(AlgorithmSpec::OptimalKing.rounds(10, 3), 13);
    assert_eq!(AlgorithmSpec::KingShift { b: 3 }.rounds(10, 3), 16);
    assert_eq!(AlgorithmSpec::KingShift { b: 5 }.rounds(10, 3), 16);
    assert_eq!(AlgorithmSpec::KingShift { b: 3 }.rounds(16, 5), 22);
}
