//! The paper treats `|V|` as an arbitrary finite constant (§2). These
//! tests run the core algorithms directly over non-binary domains — the
//! trees, conversion functions and discovery rules are all value-generic
//! — including adversaries that inject out-of-domain values.

use shifting_gears::adversary::{FaultSelection, RandomLiar, TwoFaced};
use shifting_gears::core::{execute, AlgorithmSpec};
use shifting_gears::sim::{
    Adversary, AdversaryView, Payload, ProcessId, ProcessSet, RunConfig, Value, ValueDomain,
};

fn config(n: usize, t: usize, domain_size: u16, v: u16) -> RunConfig {
    RunConfig::new(n, t)
        .with_domain(ValueDomain::new(domain_size))
        .with_source_value(Value(v))
}

#[test]
fn exponential_agrees_over_four_valued_domain() {
    for v in [0u16, 1, 2, 3] {
        let mut adversary = TwoFaced::new(FaultSelection::without_source());
        let outcome = execute(
            AlgorithmSpec::Exponential,
            &config(7, 2, 4, v),
            &mut adversary,
        )
        .unwrap();
        outcome.assert_correct();
        assert_eq!(outcome.decision(), Some(Value(v)));
    }
}

#[test]
fn shifted_families_agree_over_five_valued_domain() {
    for spec in [
        AlgorithmSpec::AlgorithmA { b: 3 },
        AlgorithmSpec::Hybrid { b: 3 },
    ] {
        let mut adversary = RandomLiar::new(FaultSelection::with_source(), 6);
        let outcome = execute(spec, &config(13, 4, 5, 4), &mut adversary).unwrap();
        outcome.assert_correct();
    }
    let mut adversary = RandomLiar::new(FaultSelection::with_source(), 6);
    let outcome = execute(
        AlgorithmSpec::AlgorithmB { b: 2 },
        &config(13, 3, 5, 4),
        &mut adversary,
    )
    .unwrap();
    outcome.assert_correct();
}

#[test]
fn algorithm_c_agrees_over_three_valued_domain() {
    let mut adversary = TwoFaced::new(FaultSelection::with_source());
    let outcome = execute(
        AlgorithmSpec::AlgorithmC,
        &config(18, 3, 3, 2),
        &mut adversary,
    )
    .unwrap();
    outcome.assert_correct();
}

/// An adversary that sends only *out-of-domain* values — receivers must
/// sanitize them all to the default, and agreement must hold on defaults.
struct OutOfDomain;

impl Adversary for OutOfDomain {
    fn name(&self) -> String {
        "out-of-domain".to_string()
    }

    fn corrupt(&mut self, n: usize, t: usize, _source: ProcessId) -> ProcessSet {
        ProcessSet::from_members(n, (1..=t).map(ProcessId))
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        _recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        let len = view.expected_len(sender);
        if len == 0 {
            Payload::Missing
        } else {
            // 999 is outside every domain used in these tests.
            Payload::Values(vec![Value(999); len])
        }
    }
}

#[test]
fn out_of_domain_values_sanitize_to_default() {
    let mut adversary = OutOfDomain;
    let outcome = execute(
        AlgorithmSpec::Exponential,
        &config(7, 2, 4, 3),
        &mut adversary,
    )
    .unwrap();
    outcome.assert_correct();
    assert_eq!(outcome.decision(), Some(Value(3)));
}

#[test]
fn bits_accounting_scales_with_domain_width() {
    // Same algorithm, same traffic in values; bits scale by ⌈log2 |V|⌉.
    let run = |size: u16| {
        let mut adversary = TwoFaced::new(FaultSelection::without_source());
        execute(
            AlgorithmSpec::Exponential,
            &config(7, 2, size, 1),
            &mut adversary,
        )
        .unwrap()
    };
    let narrow = run(2); // 1 bit per value
    let wide = run(9); // 4 bits per value
    assert_eq!(narrow.metrics.total_bits() * 4, wide.metrics.total_bits());
    assert_eq!(
        narrow.metrics.max_message_values(),
        wide.metrics.max_message_values()
    );
}

#[test]
fn phase_king_handles_multivalued_domain() {
    let mut adversary = RandomLiar::new(FaultSelection::without_source(), 12);
    let outcome = execute(
        AlgorithmSpec::PhaseKing,
        &config(9, 2, 4, 3),
        &mut adversary,
    )
    .unwrap();
    outcome.assert_correct();
    assert_eq!(outcome.decision(), Some(Value(3)));
}

#[test]
fn dolev_strong_handles_multivalued_domain() {
    let mut adversary = RandomLiar::new(FaultSelection::without_source(), 15);
    let outcome = execute(
        AlgorithmSpec::DolevStrong,
        &config(6, 3, 10, 7),
        &mut adversary,
    )
    .unwrap();
    outcome.assert_correct();
    assert_eq!(outcome.decision(), Some(Value(7)));
}

#[test]
fn optimal_king_agrees_over_four_valued_domain() {
    for v in [0u16, 1, 2, 3] {
        let mut adversary = TwoFaced::new(FaultSelection::without_source());
        let outcome = execute(
            AlgorithmSpec::OptimalKing,
            &config(10, 3, 4, v),
            &mut adversary,
        )
        .unwrap();
        outcome.assert_correct();
        assert_eq!(outcome.decision(), Some(Value(v)));
    }
}

#[test]
fn optimal_king_agrees_with_faulty_source_over_wide_domain() {
    let mut adversary = RandomLiar::new(FaultSelection::with_source(), 15);
    let outcome = execute(
        AlgorithmSpec::OptimalKing,
        &config(13, 4, 7, 6),
        &mut adversary,
    )
    .unwrap();
    outcome.assert_correct();
}

#[test]
fn king_shift_agrees_over_three_valued_domain() {
    for v in [0u16, 1, 2] {
        let mut adversary = RandomLiar::new(FaultSelection::without_source(), 21);
        let outcome = execute(
            AlgorithmSpec::KingShift { b: 3 },
            &config(10, 3, 3, v),
            &mut adversary,
        )
        .unwrap();
        outcome.assert_correct();
        assert_eq!(outcome.decision(), Some(Value(v)));
    }
}

/// The `⊥` wire sentinel must stay distinguishable from every legitimate
/// value even at the largest supported domain.
#[test]
fn king_bot_sentinel_never_collides_with_domain_values() {
    use shifting_gears::core::optimal_king::BOT_WIRE;
    let wide = ValueDomain::new(u16::MAX); // largest constructible domain
    assert!(!wide.contains(BOT_WIRE));
}
