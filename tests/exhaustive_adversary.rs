//! Exhaustive behaviour-space model checks on small instances.
//!
//! The paper's fault model places *no restriction* on faulty behaviour.
//! For small instances, the space of behaviours that are distinguishable
//! to the receivers is finite: the engine asks the adversary for one
//! payload per (faulty sender, recipient) pair per round, and a receiver
//! of a single binary value can only observe `0`, `1`, or
//! unreadable/absent. These tests enumerate that space *completely* for
//! one-fault instances of every algorithm and assert agreement and
//! validity in every execution — a model-checking complement to the
//! randomized gauntlet.
//!
//! For multi-value messages (deeper gather rounds) the move alphabet is a
//! structured subset (uniform stories, first-position flips, garbage), so
//! those checks are *bounded* model checks, labelled accordingly.

use shifting_gears::adversary::{
    calls_per_run, enumerate_tapes, Move, TapeAdversary, ALL_MOVES, SINGLE_VALUE_MOVES,
};
use shifting_gears::core::{execute, AlgorithmSpec};
use shifting_gears::sim::{ProcessId, RunConfig, Value};

/// Runs `spec` under one explicit behaviour tape with `faulty` corrupted,
/// asserting agreement + validity.
fn check_tape(
    spec: AlgorithmSpec,
    n: usize,
    t: usize,
    faulty: ProcessId,
    tape: Vec<Move>,
    source_value: Value,
) {
    let mut adversary = TapeAdversary::new([faulty], tape).expect("non-empty tape");
    let config = RunConfig::new(n, t).with_source_value(source_value);
    let outcome = execute(spec, &config, &mut adversary).expect("valid spec");
    assert!(
        outcome.agreement(),
        "agreement violated by tape {:?} (spec {})",
        adversary.tape(),
        spec.name()
    );
    if let Some(valid) = outcome.validity() {
        assert!(
            valid,
            "validity violated by tape {:?} (spec {})",
            adversary.tape(),
            spec.name()
        );
    }
}

/// Runs `spec` under every tape over `alphabet` with `faulty` corrupted,
/// fanning chunks of the enumeration out over the sweep engine. Returns
/// the number of executions checked.
fn check_all_tapes(
    spec: AlgorithmSpec,
    n: usize,
    t: usize,
    faulty: ProcessId,
    alphabet: &[Move],
    source_value: Value,
) -> usize {
    let rounds = spec.rounds(n, t);
    let len = calls_per_run(n, 1, rounds);
    let tapes: Vec<Vec<Move>> = enumerate_tapes(alphabet, len).collect();
    let checked = tapes.len();
    let chunk = checked.div_ceil(32).max(1);
    let cells: Vec<Vec<Vec<Move>>> = tapes.chunks(chunk).map(<[_]>::to_vec).collect();
    shifting_gears::analysis::sweep_map(cells, move |chunk| {
        for tape in chunk {
            check_tape(spec, n, t, faulty, tape, source_value);
        }
    });
    checked
}

/// Exponential Algorithm, n = 4, t = 1, faulty *source*: 2 rounds, 6
/// adversary calls, exhaustive single-value alphabet (the source's round-1
/// message and its spurious round-2 traffic are both single-value slots).
/// 3^6 = 729 executions cover every behaviour of a Byzantine source over
/// the binary domain.
#[test]
fn exponential_n4_faulty_source_exhaustive() {
    let checked = check_all_tapes(
        AlgorithmSpec::Exponential,
        4,
        1,
        ProcessId(0),
        &SINGLE_VALUE_MOVES,
        Value(1),
    );
    assert_eq!(checked, 729);
}

/// Exponential Algorithm, n = 4, t = 1, faulty *relay*: its only
/// protocol-visible traffic is the round-2 root echo (single value), so
/// the single-value alphabet is again exhaustive. Checked for both source
/// values.
#[test]
fn exponential_n4_faulty_relay_exhaustive() {
    for source_value in [Value(0), Value(1)] {
        let checked = check_all_tapes(
            AlgorithmSpec::Exponential,
            4,
            1,
            ProcessId(2),
            &SINGLE_VALUE_MOVES,
            source_value,
        );
        assert_eq!(checked, 729);
    }
}

/// The *plain* (unmodified, PSL-style) Exponential Algorithm must survive
/// the same exhaustive space — discovery and masking are optimizations for
/// the shifted families, not crutches for t = 1 correctness.
#[test]
fn plain_exponential_n4_faulty_source_exhaustive() {
    let checked = check_all_tapes(
        AlgorithmSpec::PlainExponential,
        4,
        1,
        ProcessId(0),
        &SINGLE_VALUE_MOVES,
        Value(1),
    );
    assert_eq!(checked, 729);
}

/// Algorithm C at n = 5, t = 1 runs two rounds (source round + one
/// rep-gather). The faulty relay's messages are single values in both
/// rounds, so the check is exhaustive: 3^8 = 6561 executions.
#[test]
fn algorithm_c_n5_faulty_relay_exhaustive() {
    let checked = check_all_tapes(
        AlgorithmSpec::AlgorithmC,
        5,
        1,
        ProcessId(3),
        &SINGLE_VALUE_MOVES,
        Value(1),
    );
    assert_eq!(checked, 6561);
}

/// Algorithm C with a faulty *source*: the source also participates in
/// the rep-gather rounds, single values throughout.
#[test]
fn algorithm_c_n5_faulty_source_exhaustive() {
    let checked = check_all_tapes(
        AlgorithmSpec::AlgorithmC,
        5,
        1,
        ProcessId(0),
        &SINGLE_VALUE_MOVES,
        Value(0),
    );
    assert_eq!(checked, 6561);
}

/// Exponential at n = 5, t = 1 with a faulty source — a bigger exhaustive
/// space (3^8 = 6561) with three correct relays out-voting the lies.
#[test]
fn exponential_n5_faulty_source_exhaustive() {
    let checked = check_all_tapes(
        AlgorithmSpec::Exponential,
        5,
        1,
        ProcessId(0),
        &SINGLE_VALUE_MOVES,
        Value(1),
    );
    assert_eq!(checked, 6561);
}

/// Bounded model check: Exponential at n = 7, t = 2 has 3-round runs with
/// multi-value messages, so full exhaustion is infeasible; instead both
/// faulty processors play *every combination over the full 6-move
/// alphabet within one shared round-robin tape of length 12* (the tape
/// wraps across the 36 calls, correlating the two faults' behaviour —
/// worst case for collusion-style attacks). 6^5 tapes of the 6^12 space
/// are sampled structurally by fixing the tail.
#[test]
fn exponential_n7_two_faults_bounded() {
    // Keep the run count ~7.8k: enumerate the first 5 cells over all six
    // moves and fill the rest of the tape with Honest.
    let heads: Vec<Vec<Move>> = enumerate_tapes(&ALL_MOVES, 5).collect();
    let checked = heads.len();
    let chunk = checked.div_ceil(32).max(1);
    let cells: Vec<Vec<Vec<Move>>> = heads.chunks(chunk).map(<[_]>::to_vec).collect();
    shifting_gears::analysis::sweep_map(cells, |chunk| {
        for mut tape in chunk {
            tape.resize(12, Move::Honest);
            let mut adversary =
                TapeAdversary::new([ProcessId(2), ProcessId(5)], tape).expect("non-empty tape");
            let config = RunConfig::new(7, 2).with_source_value(Value(1));
            let outcome = execute(AlgorithmSpec::Exponential, &config, &mut adversary).unwrap();
            assert!(
                outcome.agreement() && outcome.validity().unwrap_or(true),
                "violation by tape {:?}",
                adversary.tape()
            );
        }
    });
    assert_eq!(checked, 6usize.pow(5));
}

/// Bounded model check for the king extensions at n = 4, t = 1: all
/// messages are single values, but the round count (8 for OptimalKing)
/// makes 3^24 infeasible; instead enumerate all 3^8 behaviours of the
/// first 8 calls (rounds 1–3, covering the seeding and the first phase)
/// and fill the rest with each of the three uniform behaviours.
#[test]
fn optimal_king_n4_bounded() {
    let heads: Vec<Vec<Move>> = enumerate_tapes(&SINGLE_VALUE_MOVES, 8).collect();
    let checked = heads.len() * SINGLE_VALUE_MOVES.len();
    let chunk = heads.len().div_ceil(32).max(1);
    let cells: Vec<Vec<Vec<Move>>> = heads.chunks(chunk).map(<[_]>::to_vec).collect();
    shifting_gears::analysis::sweep_map(cells, |chunk| {
        for head in chunk {
            for filler in SINGLE_VALUE_MOVES {
                let mut tape = head.clone();
                tape.resize(24, filler);
                let mut adversary =
                    TapeAdversary::new([ProcessId(1)], tape).expect("non-empty tape");
                let config = RunConfig::new(4, 1).with_source_value(Value(1));
                let outcome = execute(AlgorithmSpec::OptimalKing, &config, &mut adversary).unwrap();
                assert!(
                    outcome.agreement() && outcome.validity().unwrap_or(true),
                    "violation by tape {:?}",
                    adversary.tape()
                );
            }
        }
    });
    assert_eq!(checked, 3 * 3usize.pow(8));
}

/// The tape mechanism must reproduce known-good behaviour: an all-Honest
/// tape is indistinguishable from no corruption at all.
#[test]
fn honest_tape_equals_fault_free_run() {
    let config = RunConfig::new(7, 2).with_source_value(Value(1));
    let spec = AlgorithmSpec::Exponential;
    let len = calls_per_run(7, 1, spec.rounds(7, 2));
    let mut adversary =
        TapeAdversary::new([ProcessId(3)], vec![Move::Honest; len]).expect("non-empty tape");
    let outcome = execute(spec, &config, &mut adversary).unwrap();
    outcome.assert_correct();
    assert_eq!(outcome.decision(), Some(Value(1)));
}
