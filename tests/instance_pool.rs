//! Instance-pool correctness: pooled-reset runs are bit-identical to
//! fresh-instance runs.
//!
//! The engine's instance pool recycles protocol instances across runs via
//! `Protocol::reset` instead of consulting the factory. The contract is
//! that pooling is *unobservable* in the output: every `Outcome` field —
//! decisions, fault sets, metrics, traces, round counts — matches a
//! fresh-instance execution exactly, for every protocol family and under
//! every adversary. The property test below drives all nine resettable
//! families (Phase King, Phase Queen, Optimal King, King-Shift, the
//! plan-driven tree machine, Dolev–Strong, interactive consistency,
//! multivalued broadcast, and shift compositions) through a cold pooled
//! run and a warm (reset) pooled run, and additionally asserts the warm
//! run never touched the factory.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serializes the tests in this file: both drive process-global engine
/// toggles (`set_instance_pooling`, `set_packed_broadcast`), so running
/// them concurrently would race the flags mid-run.
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

use proptest::prelude::*;
use shifting_gears::adversary::{ChainRevealer, FaultSelection, RandomLiar, TwoFaced};
use shifting_gears::core::{
    interactive_consistency, multivalued_broadcast, AlgorithmSpec, Params, ShiftPlanBuilder,
};
use shifting_gears::sim::{
    run_in, run_pooled_in, set_packed_broadcast, Adversary, Outcome, PoolKey, ProcessId, Protocol,
    RunArena, RunConfig, Value, ValueDomain,
};

/// Outcome equality over every observable field.
fn assert_same_outcome(label: &str, fresh: &Outcome, pooled: &Outcome) {
    assert_eq!(fresh.decisions, pooled.decisions, "{label}: decisions");
    assert_eq!(fresh.faulty, pooled.faulty, "{label}: fault set");
    assert_eq!(fresh.metrics, pooled.metrics, "{label}: metrics");
    assert_eq!(fresh.trace, pooled.trace, "{label}: trace");
    assert_eq!(fresh.rounds_used, pooled.rounds_used, "{label}: rounds");
}

/// One comparison: a fresh-instance run vs a cold pooled run vs a warm
/// (instance-reset) pooled run of the same configuration, with the
/// factory-call count of the warm run pinned to zero.
fn check_pool_identity(
    label: &str,
    config: &RunConfig,
    key: PoolKey,
    mk_adversary: &dyn Fn() -> Box<dyn Adversary>,
    factory: &dyn Fn(ProcessId) -> Box<dyn Protocol>,
) {
    let mut fresh_arena = RunArena::new();
    let fresh = run_in(&mut fresh_arena, config, mk_adversary().as_mut(), factory);

    let calls = AtomicUsize::new(0);
    let counting = |me: ProcessId| {
        calls.fetch_add(1, Ordering::SeqCst);
        factory(me)
    };
    let mut arena = RunArena::new();
    let cold = run_pooled_in(&mut arena, config, mk_adversary().as_mut(), key, counting);
    assert_eq!(
        calls.swap(0, Ordering::SeqCst),
        config.n,
        "{label}: cold pooled run builds every instance"
    );
    let warm = run_pooled_in(&mut arena, config, mk_adversary().as_mut(), key, counting);
    assert_eq!(
        calls.load(Ordering::SeqCst),
        0,
        "{label}: warm pooled run must reset, not rebuild"
    );

    // The bit-packed broadcast view must be unobservable too: re-run
    // with the packed masks disabled (per-payload fallback tallies) and
    // expect the same bytes.
    set_packed_broadcast(false);
    let unpacked = run_pooled_in(&mut arena, config, mk_adversary().as_mut(), key, counting);
    set_packed_broadcast(true);

    assert_same_outcome(label, &fresh, &cold);
    assert_same_outcome(label, &fresh, &warm);
    assert_same_outcome(label, &fresh, &unpacked);
}

/// The adversary sample: stateless, seeded-random, and staged-reveal
/// strategies, with and without a corrupted source.
fn adversary(idx: usize, seed: u64) -> Box<dyn Adversary> {
    match idx {
        0 => Box::new(shifting_gears::sim::NoFaults),
        1 => Box::new(RandomLiar::new(FaultSelection::with_source(), seed)),
        2 => Box::new(TwoFaced::new(FaultSelection::without_source())),
        _ => Box::new(ChainRevealer::new(
            FaultSelection::without_source(),
            2,
            2,
            seed,
        )),
    }
}

/// Drives one spec-shaped case through [`check_pool_identity`].
fn check_spec(spec: AlgorithmSpec, n: usize, t: usize, adv_idx: usize, seed: u64) {
    let mut config = RunConfig::new(n, t)
        .with_source_value(Value(1))
        .with_trace();
    if spec.needs_authentication() {
        config = config.with_authentication();
    }
    let key = spec.pool_key(&config);
    let factory = spec.factory(&config);
    check_pool_identity(
        &spec.name(),
        &config,
        key,
        &|| adversary(adv_idx, seed),
        &factory,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All nine resettable protocol families, a sample of adversaries and
    /// seeds: pooled-reset outcomes are bit-identical to fresh-instance
    /// outcomes and the warm run never consults the factory.
    #[test]
    fn pooled_reset_runs_match_fresh_runs(seed in 0u64..1_000, adv_idx in 0usize..4) {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // The six spec-built families.
        check_spec(AlgorithmSpec::PhaseKing, 9, 2, adv_idx, seed);
        check_spec(AlgorithmSpec::PhaseQueen, 9, 2, adv_idx, seed);
        check_spec(AlgorithmSpec::OptimalKing, 7, 2, adv_idx, seed);
        check_spec(AlgorithmSpec::KingShift { b: 3 }, 10, 3, adv_idx, seed);
        check_spec(AlgorithmSpec::DynamicKing { b: 3 }, 10, 3, adv_idx, seed);
        check_spec(AlgorithmSpec::Exponential, 7, 2, adv_idx, seed);
        check_spec(AlgorithmSpec::DolevStrong, 5, 3, adv_idx, seed);

        // Interactive consistency: n parallel broadcasts over a Multiplex.
        let ic_config = RunConfig::new(4, 1).with_source_value(Value(1)).with_trace();
        let ic_params = Params::from_config(&ic_config);
        let inputs = [Value(1), Value(0), Value(1), Value(0)];
        check_pool_identity(
            "interactive-consistency",
            &ic_config,
            PoolKey::of(&[0xA11CE, seed ^ 1]),
            &|| adversary(adv_idx, seed),
            &|me| {
                Box::new(interactive_consistency(
                    AlgorithmSpec::Exponential,
                    ic_params,
                    me,
                    &inputs,
                ))
            },
        );

        // Multivalued broadcast: bit-parallel binary instances.
        let mv_config = RunConfig::new(7, 2)
            .with_domain(ValueDomain::new(5))
            .with_source_value(Value(3))
            .with_trace();
        let mv_params = Params::from_config(&mv_config);
        check_pool_identity(
            "multivalued",
            &mv_config,
            PoolKey::of(&[0xB175, seed ^ 2]),
            &|| adversary(adv_idx, seed),
            &|me| {
                let input = (me == mv_config.source).then_some(mv_config.source_value);
                Box::new(multivalued_broadcast(
                    AlgorithmSpec::Exponential,
                    mv_params,
                    me,
                    input,
                ))
            },
        );

        // A shift composition with a king tail.
        let composition = ShiftPlanBuilder::new(10, 3)
            .a_blocks(3, 1)
            .king_tail()
            .build()
            .expect("king tail closes any prefix");
        let co_config = RunConfig::new(10, 3).with_source_value(Value(1)).with_trace();
        let co_params = Params::from_config(&co_config);
        check_pool_identity(
            "compose",
            &co_config,
            composition.pool_key(&co_config),
            &|| adversary(adv_idx, seed),
            &|me| {
                let input = (me == co_config.source).then_some(co_config.source_value);
                Box::new(composition.build(co_params, me, input))
            },
        );
    }
}

/// Panic recovery is *targeted*: when the serve worker quarantines a
/// poisoned key with `RunArena::evict_instances`, only that key's
/// entries go — a sibling key warmed in the same arena must keep its
/// instances and answer the next run with zero factory calls. (This is
/// the regression test for the old behavior of rebuilding the whole
/// arena after a panicked job, which froze out every unrelated grid's
/// warmth.)
#[test]
fn evicting_one_pool_key_leaves_sibling_keys_warm() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config_a = RunConfig::new(7, 2)
        .with_source_value(Value(1))
        .with_trace();
    let config_b = RunConfig::new(9, 2)
        .with_source_value(Value(1))
        .with_trace();
    let spec_a = AlgorithmSpec::OptimalKing;
    let spec_b = AlgorithmSpec::PhaseKing;
    let key_a = spec_a.pool_key(&config_a);
    let key_b = spec_b.pool_key(&config_b);
    let factory_a = spec_a.factory(&config_a);
    let factory_b = spec_b.factory(&config_b);
    let mut arena = RunArena::new();

    let calls_a = AtomicUsize::new(0);
    let calls_b = AtomicUsize::new(0);
    let counting_a = |me: ProcessId| {
        calls_a.fetch_add(1, Ordering::SeqCst);
        factory_a(me)
    };
    let counting_b = |me: ProcessId| {
        calls_b.fetch_add(1, Ordering::SeqCst);
        factory_b(me)
    };
    let adv = || Box::new(shifting_gears::sim::NoFaults) as Box<dyn Adversary>;

    // Warm both keys.
    run_pooled_in(&mut arena, &config_a, adv().as_mut(), key_a, counting_a);
    run_pooled_in(&mut arena, &config_b, adv().as_mut(), key_b, counting_b);
    assert_eq!(calls_a.swap(0, Ordering::SeqCst), config_a.n);
    assert_eq!(calls_b.swap(0, Ordering::SeqCst), config_b.n);
    assert_eq!(arena.pooled_instance_sets(), 2);

    // Quarantine key A (what the serve worker does after a panic in an
    // A-cell), then run both again.
    arena.evict_instances(key_a);
    assert_eq!(arena.pooled_instance_sets(), 1);
    let rerun_a = run_pooled_in(&mut arena, &config_a, adv().as_mut(), key_a, counting_a);
    let rerun_b = run_pooled_in(&mut arena, &config_b, adv().as_mut(), key_b, counting_b);

    assert_eq!(
        calls_a.load(Ordering::SeqCst),
        config_a.n,
        "the evicted key must rebuild from the factory"
    );
    assert_eq!(
        calls_b.load(Ordering::SeqCst),
        0,
        "the sibling key must stay warm across the eviction"
    );

    // And the outcomes are still the fresh-run outcomes, bit for bit.
    let mut fresh_arena = RunArena::new();
    let fresh_a = run_in(&mut fresh_arena, &config_a, adv().as_mut(), &factory_a);
    let fresh_b = run_in(&mut fresh_arena, &config_b, adv().as_mut(), &factory_b);
    assert_same_outcome("evicted key", &fresh_a, &rerun_a);
    assert_same_outcome("surviving key", &fresh_b, &rerun_b);
}

/// Pooling responds to the global escape hatch: with
/// `set_instance_pooling(false)` every run rebuilds its instances, and
/// outcomes still match pooled runs exactly (the CI perf-smoke invariant).
#[test]
fn disabling_the_pool_rebuilds_instances_without_changing_outcomes() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = RunConfig::new(7, 2)
        .with_source_value(Value(1))
        .with_trace();
    let spec = AlgorithmSpec::OptimalKing;
    let key = spec.pool_key(&config);
    let factory = spec.factory(&config);
    let mut arena = RunArena::new();

    let pooled_a = run_pooled_in(
        &mut arena,
        &config,
        &mut RandomLiar::new(FaultSelection::with_source(), 11),
        key,
        &factory,
    );
    let pooled_b = run_pooled_in(
        &mut arena,
        &config,
        &mut RandomLiar::new(FaultSelection::with_source(), 11),
        key,
        &factory,
    );

    shifting_gears::sim::set_instance_pooling(false);
    let calls = AtomicUsize::new(0);
    let unpooled = run_pooled_in(
        &mut arena,
        &config,
        &mut RandomLiar::new(FaultSelection::with_source(), 11),
        key,
        |me| {
            calls.fetch_add(1, Ordering::SeqCst);
            factory(me)
        },
    );
    shifting_gears::sim::set_instance_pooling(true);

    assert_eq!(
        calls.load(Ordering::SeqCst),
        config.n,
        "disabled pool must rebuild every instance"
    );
    assert_same_outcome("escape hatch", &pooled_a, &pooled_b);
    assert_same_outcome("escape hatch", &pooled_a, &unpooled);
}
