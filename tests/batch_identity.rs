//! Batch-vs-scalar bit-identity: the lock-step batch executor is
//! *unobservable* in sweep output.
//!
//! The sweep engine's batch layer (`sg_sim::run_batch` +
//! `sg_core::KingBatchKernel`) executes up to 64 seeds of a cell in
//! lock-step, one bit lane per run. Its contract is the same as every
//! other engine fast path (`set_packed_broadcast`, instance pooling):
//! toggling it changes wall time only, never a byte of the report. The
//! property tests below drive the eleven protocol families through the
//! named adversary suite at `f ∈ {0, 1, t}` and assert the full
//! [`SweepReport`] — every sample of every cell, and the pinned
//! fingerprint derived from it — matches between `set_batch_runs(true)`
//! and `set_batch_runs(false)`. Families without a batch kernel exercise
//! the chunk-scheduling layer (grouped units must flatten back to seed
//! order); `optimal-king` cells exercise the kernel itself, including
//! early-stop retirement splitting the active mask mid-batch; the
//! `king-shift` / `dynamic-king` cells exercise the mixed-width gear
//! kernels (scalar tree prefix, bit-lane king tail), including the
//! per-lane gear-commit vote and its scalar-deferral escape hatch.
//!
//! The same contract covers the batch *adversary* layer
//! (`sg_sim::set_batch_adversaries`): the vectorized fault-injection
//! path for the six named families must be unobservable next to the
//! per-lane scalar bridge.

use std::sync::Mutex;

use proptest::prelude::*;
use shifting_gears::adversary::FaultSelection;
use shifting_gears::analysis::{AdversaryFamily, SweepConfig, SweepPlan, SweepReport};
use shifting_gears::core::AlgorithmSpec;
use shifting_gears::sim::{set_batch_adversaries, set_batch_runs, set_early_stopping};

/// Serializes the tests in this file: all of them drive the
/// process-global `set_batch_runs` toggle, so running them concurrently
/// would race the flag mid-sweep.
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `plan` once with the batch executor and once without, restoring
/// the default (on) afterwards, and returns both reports.
///
/// The caller must hold `TOGGLE_LOCK`.
fn batched_and_scalar(plan: &SweepPlan, jobs: usize) -> (SweepReport, SweepReport) {
    set_batch_runs(true);
    let batched = plan.run_with_jobs(jobs);
    set_batch_runs(false);
    let scalar = plan.run_with_jobs(jobs);
    set_batch_runs(true);
    (batched, scalar)
}

/// The eleven protocol families of the sweep surface. Every resilience
/// bound accepts `(n, t) = (10, 2)` except the hybrid's, which pins
/// `t = t_A(10) = 3` (the property test adjusts).
fn spec(idx: usize) -> AlgorithmSpec {
    match idx {
        0 => AlgorithmSpec::PlainExponential,
        1 => AlgorithmSpec::Exponential,
        2 => AlgorithmSpec::AlgorithmA { b: 3 },
        3 => AlgorithmSpec::AlgorithmB { b: 3 },
        4 => AlgorithmSpec::AlgorithmC,
        5 => AlgorithmSpec::Hybrid { b: 3 },
        6 => AlgorithmSpec::PhaseKing,
        7 => AlgorithmSpec::OptimalKing,
        8 => AlgorithmSpec::PhaseQueen,
        9 => AlgorithmSpec::KingShift { b: 3 },
        _ => AlgorithmSpec::DynamicKing { b: 3 },
    }
}

/// The named adversary suite, parameterized by a fault selection — the
/// same families `sg sweep --adversary` exposes, at the CLI's default
/// shape parameters.
fn family(idx: usize, sel: FaultSelection) -> AdversaryFamily {
    match idx {
        0 => AdversaryFamily::no_faults(),
        1 => AdversaryFamily::random_liar(sel),
        2 => AdversaryFamily::chain_revealer(sel, 2, 2),
        3 => AdversaryFamily::crash(sel, 2),
        4 => AdversaryFamily::silent(sel),
        5 => AdversaryFamily::partition(sel, 1, 2, 3),
        6 => AdversaryFamily::omission(sel, 2, 0),
        7 => AdversaryFamily::equivocate(sel, 3, 1),
        _ => AdversaryFamily::adaptive(sel, vec![2, 4]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-identity across the grid: family × adversary × fault budget.
    /// Cells with a lock-step kernel (`optimal-king`, `phase-king`,
    /// `phase-queen`) get 65 seeds so one chunk fills completely and a
    /// second, partial chunk crosses the 64-lane boundary; the
    /// scalar-fallback families get fewer (their identity is
    /// scheduling-only, and the tree machines are costly per run).
    #[test]
    fn batch_and_scalar_reports_are_bit_identical(
        spec_idx in 0usize..11,
        adv_idx in 0usize..9,
        f in 0usize..3,
    ) {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let n = 10;
        // The hybrid runs only at its design resilience t_A(10) = 3;
        // every other family accepts (10, 2).
        let t = match spec(spec_idx) {
            AlgorithmSpec::Hybrid { .. } => 3,
            _ => 2,
        };
        let budget = [0, 1, t][f];
        let seeds = match spec(spec_idx) {
            AlgorithmSpec::OptimalKing
            | AlgorithmSpec::PhaseKing
            | AlgorithmSpec::PhaseQueen => 65,
            AlgorithmSpec::PlainExponential | AlgorithmSpec::Exponential => 4,
            _ => 8,
        };
        let plan = SweepPlan::new(
            vec![SweepConfig::traced(spec(spec_idx), n, t)],
            vec![family(adv_idx, FaultSelection::without_source().limit(budget))],
            seeds,
        );
        let (batched, scalar) = batched_and_scalar(&plan, 1);
        prop_assert_eq!(&batched, &scalar);
        prop_assert_eq!(batched.fingerprint(), scalar.fingerprint());
    }

    /// The batch *adversary* layer is as unobservable as the batch
    /// executor: for the kernel-backed specs (the king-tail gear hybrids
    /// and the phase family) under every vector-eligible named family at
    /// `f ∈ {0, 1, t}`, the vectorized fault-injection path
    /// (`set_batch_adversaries(true)`, one `lies` call per round), the
    /// per-lane scalar bridge (`false`), and the fully scalar engine
    /// (`set_batch_runs(false)`) all produce one report.
    #[test]
    fn batch_adversaries_are_bit_identical_too(
        spec_idx in 0usize..4,
        adv_idx in 0usize..6,
        f in 0usize..3,
    ) {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let spec = [
            AlgorithmSpec::KingShift { b: 3 },
            AlgorithmSpec::DynamicKing { b: 3 },
            AlgorithmSpec::PhaseKing,
            AlgorithmSpec::OptimalKing,
        ][spec_idx];
        let sel = FaultSelection::without_source().limit([0, 1, 2][f]);
        let family = [
            AdversaryFamily::random_liar(sel.clone()),
            AdversaryFamily::crash(sel.clone(), 2),
            AdversaryFamily::silent(sel.clone()),
            AdversaryFamily::omission(sel.clone(), 2, 0),
            AdversaryFamily::equivocate(sel.clone(), 3, 1),
            AdversaryFamily::adaptive(sel.clone(), vec![2, 4]),
        ][adv_idx].clone();
        let seeds = match spec {
            AlgorithmSpec::OptimalKing | AlgorithmSpec::PhaseKing => 65,
            _ => 8,
        };
        let plan = SweepPlan::new(
            vec![SweepConfig::traced(spec, 10, 2)],
            vec![family],
            seeds,
        );
        set_batch_runs(true);
        set_batch_adversaries(true);
        let vectorized = plan.run_with_jobs(1);
        set_batch_adversaries(false);
        let bridged = plan.run_with_jobs(1);
        set_batch_adversaries(true);
        set_batch_runs(false);
        let scalar = plan.run_with_jobs(1);
        set_batch_runs(true);
        prop_assert_eq!(&vectorized, &bridged);
        prop_assert_eq!(&vectorized, &scalar);
        prop_assert_eq!(vectorized.fingerprint(), scalar.fingerprint());
    }
}

/// Early-stop divergence mid-batch: an `optimal-king` cell whose runs
/// retire at different rounds (the probe histogram at this cell is
/// `{3, 6, 9, 12}`), so the active mask shrinks lane by lane while the
/// survivors keep executing. The retired lanes' state must stay frozen —
/// any leak shows up as a sample mismatch against the scalar run.
#[test]
fn early_stop_divergence_splits_the_active_mask() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 10, 3)],
        vec![AdversaryFamily::random_liar(FaultSelection::with_source())],
        65,
    );
    let (batched, scalar) = batched_and_scalar(&plan, 1);
    assert_eq!(batched, scalar);

    // The cell must actually diverge — otherwise this test silently
    // degrades to the uniform-retirement case the property test covers.
    let distinct: std::collections::BTreeSet<u64> =
        batched.cells[0].samples.iter().map(|s| s.rounds).collect();
    assert!(
        distinct.len() >= 2,
        "cell retired uniformly (rounds {distinct:?}); pick a livelier cell"
    );
}

/// With early stopping disabled, no lane ever retires mid-loop: every
/// run survives to the schedule's end and takes the post-loop
/// finalization path (`rounds_used = total_rounds`, not early-stopped).
/// That path must also match the scalar executor bit for bit.
#[test]
fn fixed_length_batches_match_scalar_too() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 10, 3)],
        vec![AdversaryFamily::random_liar(FaultSelection::with_source())],
        65,
    );
    set_early_stopping(false);
    let (batched, scalar) = batched_and_scalar(&plan, 1);
    set_early_stopping(true);
    assert_eq!(batched, scalar);
    let total_rounds = 1 + 3 * (3 + 1); // optimal-king schedule at t = 3
    assert!(
        batched.cells[0]
            .samples
            .iter()
            .all(|s| s.rounds == total_rounds && !s.early_stopped),
        "fixed-length runs must fill the whole schedule"
    );
}

/// The phase-family kernels (`phase-king`, `phase-queen`) share the
/// two-round phase shape but differ in the keep-your-value rule
/// (plurality-with-proof vs. pure threshold); both must match their
/// scalar protocols bit for bit across a 65-seed chunk boundary, under
/// an adversary allowed to corrupt the source and every phase leader —
/// the paths where the tally-majority broadcast and the super-majority
/// override actually diverge.
#[test]
fn phase_family_kernels_match_scalar() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for spec in [AlgorithmSpec::PhaseKing, AlgorithmSpec::PhaseQueen] {
        let plan = SweepPlan::new(
            vec![SweepConfig::traced(spec, 10, 2)],
            vec![AdversaryFamily::random_liar(FaultSelection::with_source())],
            65,
        );
        let (batched, scalar) = batched_and_scalar(&plan, 1);
        assert_eq!(batched, scalar, "{spec:?} batch != scalar");
        assert_eq!(batched.fingerprint(), scalar.fingerprint());

        // The cell must exercise early-stop divergence (lanes retiring
        // at different rounds), not just the uniform case.
        let distinct: std::collections::BTreeSet<u64> =
            batched.cells[0].samples.iter().map(|s| s.rounds).collect();
        assert!(
            distinct.len() >= 2,
            "{spec:?} retired uniformly (rounds {distinct:?}); pick a livelier cell"
        );
    }
}

/// The gear hybrids (`king-shift` statically planned, `dynamic-king`
/// vote-driven) execute on the mixed-width kernel: the tree prefix runs
/// scalar instances inside the wide round, the king tail runs in bit
/// lanes, and the whole composite must match the scalar executor bit
/// for bit — across a 65-seed chunk boundary and at both worker counts.
#[test]
fn gear_kernels_match_scalar_across_chunks_and_jobs() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for spec in [
        AlgorithmSpec::KingShift { b: 3 },
        AlgorithmSpec::DynamicKing { b: 3 },
    ] {
        let plan = SweepPlan::new(
            vec![SweepConfig::traced(spec, 10, 2)],
            vec![AdversaryFamily::random_liar(
                FaultSelection::without_source().limit(2),
            )],
            65,
        );
        let (batched, scalar) = batched_and_scalar(&plan, 1);
        assert_eq!(batched, scalar, "{spec:?} batch != scalar");

        set_batch_runs(true);
        let parallel = plan.run_with_jobs(8);
        assert_eq!(parallel, scalar, "{spec:?} parallel batch != scalar");
    }
}

/// Lane divergence inside one `dynamic-king` batch: at `(10, 3)` under
/// seed-dependent random liars, different lanes accumulate different
/// fault evidence, so at a checkpoint some lanes' correct processors
/// vote to shift unanimously (the kernel commits the gear shift in
/// lock-step) while others split or decline — deferred lanes retire to
/// the scalar executor mid-batch and their scalar samples are spliced
/// back at their seed positions. Whatever mix occurs, the result must
/// be bit-identical to the all-scalar run; the round histogram must
/// actually spread, or the cell silently degrades to the uniform case
/// the property test already covers.
#[test]
fn dynamic_king_lane_divergence_splits_the_batch() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = SweepPlan::new(
        vec![SweepConfig::traced(
            AlgorithmSpec::DynamicKing { b: 3 },
            10,
            3,
        )],
        vec![AdversaryFamily::random_liar(
            FaultSelection::without_source().limit(2),
        )],
        64,
    );
    let (batched, scalar) = batched_and_scalar(&plan, 1);
    assert_eq!(batched, scalar);

    let distinct: std::collections::BTreeSet<u64> =
        batched.cells[0].samples.iter().map(|s| s.rounds).collect();
    assert!(
        distinct.len() >= 2,
        "cell retired uniformly (rounds {distinct:?}); pick a livelier cell"
    );
}

/// Worker count and batching compose: a mixed grid (kernel cell +
/// fallback cell, two adversaries) produces one report for all four
/// combinations of `--jobs {1, 8}` × batch on/off.
#[test]
fn jobs_and_batching_commute_on_a_mixed_grid() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 10, 3),
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::with_source()),
            AdversaryFamily::crash(FaultSelection::without_source().limit(3), 2),
        ],
        70,
    );
    set_batch_runs(true);
    let batched_1 = plan.run_with_jobs(1);
    let batched_8 = plan.run_with_jobs(8);
    set_batch_runs(false);
    let scalar_1 = plan.run_with_jobs(1);
    let scalar_8 = plan.run_with_jobs(8);
    set_batch_runs(true);
    assert_eq!(batched_1, batched_8);
    assert_eq!(batched_1, scalar_1);
    assert_eq!(batched_1, scalar_8);
}
