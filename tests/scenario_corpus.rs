//! The committed scenario corpus: recorded adversary runs that must keep
//! replaying with their recorded verdicts.
//!
//! `tests/corpus/*.json` are `sg-scenario/1` artifacts — each one a full
//! adversary trace plus the verdict the run produced when recorded. The
//! regression test here (and CI's `scenario-corpus` job, which drives the
//! same files through `sg replay`) re-executes every trace and asserts
//! the verdict reproduces bit-exactly, so any engine change that silently
//! alters what a recorded fault pattern does to a protocol fails loudly.
//!
//! The corpus includes *violations* (over-budget adversaries breaking
//! agreement) on purpose: disagreement is a preservable verdict, and the
//! corpus is exactly where minimized counterexamples live once found.
//!
//! Regenerate with `SG_EXPORT_CORPUS=1 cargo test --test scenario_corpus
//! -- export` — the generator is fully deterministic (fixed cells, fixed
//! seeds, lexicographic tape search), so regeneration is a no-op unless
//! engine behaviour actually changed.

use std::path::PathBuf;

use serde::json::Value as Json;
use serde::{FromJson, ToJson};
use shifting_gears::adversary::{
    enumerate_tapes, Adaptive, Equivocate, FaultSelection, Omission, Partition, TapeAdversary,
    SINGLE_VALUE_MOVES,
};
use shifting_gears::analysis::scenario::{record, replay};
use shifting_gears::analysis::{Scenario, SweepConfig};
use shifting_gears::core::AlgorithmSpec;
use shifting_gears::sim::{Adversary, ProcessId};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

/// Every committed scenario replays with its recorded verdict.
#[test]
fn corpus_replays_with_recorded_verdicts() {
    let files = corpus_files();
    assert!(
        !files.is_empty(),
        "tests/corpus must contain at least one scenario"
    );
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let json =
            Json::parse(&text).unwrap_or_else(|e| panic!("{}: invalid JSON: {e}", path.display()));
        let recorded = Scenario::from_json(&json)
            .unwrap_or_else(|e| panic!("{}: not a scenario: {e}", path.display()));
        let fresh =
            replay(&recorded).unwrap_or_else(|e| panic!("{}: replay failed: {e}", path.display()));
        assert_eq!(
            fresh,
            recorded.verdict,
            "{}: verdict drifted",
            path.display()
        );
    }
}

/// The corpus holds at least one recorded agreement violation — the
/// counterexample half of the regression surface.
#[test]
fn corpus_includes_a_violation() {
    let mut saw_violation = false;
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let json = Json::parse(&text).expect("valid JSON");
        let recorded = Scenario::from_json(&json).expect("valid scenario");
        saw_violation |= !recorded.verdict.agreement;
    }
    assert!(
        saw_violation,
        "corpus must include a recorded agreement violation"
    );
}

/// The named survival scenarios: (file stem, cell, strategy).
fn survival_exhibits() -> Vec<(&'static str, SweepConfig, Box<dyn Adversary>)> {
    vec![
        (
            "equivocate_optimal_king_n7",
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            Box::new(Equivocate::new(FaultSelection::with_source(), 3, 1)),
        ),
        (
            "partition_optimal_king_n7",
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            Box::new(Partition::new(
                FaultSelection::without_source().limit(1),
                1,
                2,
                3,
            )),
        ),
        (
            "omission_phase_king_n5",
            SweepConfig::traced(AlgorithmSpec::PhaseKing, 5, 1),
            Box::new(Omission::new(FaultSelection::without_source(), 2, 0)),
        ),
        (
            "adaptive_exponential_n7",
            SweepConfig::traced(AlgorithmSpec::Exponential, 7, 2),
            Box::new(Adaptive::new(FaultSelection::without_source(), vec![1, 3])),
        ),
        (
            "tape_exponential_n4",
            SweepConfig::traced(AlgorithmSpec::Exponential, 4, 1),
            Box::new(
                TapeAdversary::new([ProcessId(1)], SINGLE_VALUE_MOVES.to_vec())
                    .expect("non-empty tape"),
            ),
        ),
    ]
}

/// Finds the lexicographically first over-budget tape that breaks
/// agreement: Exponential at (n=4, t=1) with *two* corrupted processors
/// (source included), searched over single-value tapes of growing length.
fn find_violation() -> Scenario {
    let config = SweepConfig::traced(AlgorithmSpec::Exponential, 4, 1);
    let members = [ProcessId(0), ProcessId(1)];
    for len in 1..=6 {
        for tape in enumerate_tapes(&SINGLE_VALUE_MOVES, len) {
            let adversary = Box::new(TapeAdversary::new(members, tape).expect("non-empty tape"));
            let (scenario, _) = record(&config, adversary).expect("recordable run");
            if !scenario.verdict.agreement {
                return scenario;
            }
        }
    }
    panic!("no violating tape found up to length 6");
}

/// Regenerates the corpus. Gated behind `SG_EXPORT_CORPUS=1` so a plain
/// `cargo test` never writes into the source tree.
#[test]
fn export_corpus() {
    if std::env::var("SG_EXPORT_CORPUS").is_err() {
        return;
    }
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create tests/corpus");
    let mut written = Vec::new();
    for (stem, config, adversary) in survival_exhibits() {
        let (scenario, _) =
            record(&config, adversary).unwrap_or_else(|e| panic!("recording {stem} failed: {e}"));
        assert!(scenario.verdict.agreement, "{stem} must be a survival");
        written.push((format!("{stem}.json"), scenario));
    }
    written.push((
        "violation_exponential_n4_overbudget.json".to_string(),
        find_violation(),
    ));
    for (file, scenario) in written {
        let path = dir.join(&file);
        std::fs::write(&path, scenario.to_json().to_string())
            .unwrap_or_else(|e| panic!("writing {file} failed: {e}"));
        println!(
            "wrote {file}: agreement={}, rounds={}",
            scenario.verdict.agreement, scenario.verdict.rounds_used
        );
    }
}
