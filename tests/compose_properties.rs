//! Property-based tests for the shift-composition framework: the
//! validator's arithmetic, the compiled plans, and end-to-end agreement
//! of randomly generated accepted compositions.

use proptest::prelude::*;

use shifting_gears::adversary::{FaultSelection, RandomLiar};
use shifting_gears::core::compose::{
    b_entry_requirement, c_entry_requirement, ComposeError, ShiftPlanBuilder,
};
use shifting_gears::core::{t_a, t_b, t_c, RoundAction};
use shifting_gears::sim::{RunConfig, Value};

/// A random composition recipe over small systems: a few A blocks, an
/// optional B segment, and a terminal (C tail sized generously, or King).
#[derive(Clone, Debug)]
struct Recipe {
    n: usize,
    a_b: usize,
    a_blocks: usize,
    b_seg: Option<(usize, usize)>,
    king: bool,
    c_rounds: usize,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop_oneof![Just(10usize), Just(13), Just(16)],
        3usize..=4,
        1usize..=3,
        proptest::option::of((2usize..=3, 1usize..=2)),
        any::<bool>(),
        1usize..=6,
    )
        .prop_map(|(n, a_b, a_blocks, b_seg, king, c_rounds)| Recipe {
            n,
            a_b,
            a_blocks,
            b_seg,
            king,
            c_rounds,
        })
}

fn build(recipe: &Recipe) -> Result<shifting_gears::core::ShiftComposition, ComposeError> {
    let t = t_a(recipe.n);
    let mut b = ShiftPlanBuilder::new(recipe.n, t).a_blocks(recipe.a_b.min(t), recipe.a_blocks);
    if let Some((bb, blocks)) = recipe.b_seg {
        b = b.b_blocks(bb.min(t), blocks);
    }
    if recipe.king {
        b = b.king_tail();
    } else {
        b = b.c_tail(recipe.c_rounds);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Accepted compositions have structurally coherent plans: start with
    /// the source round, rounds() matches the plan plus any king tail,
    /// and every conversion matches its segment family.
    #[test]
    fn accepted_plans_are_coherent(r in recipe()) {
        let Ok(c) = build(&r) else { return Ok(()) };
        let t = t_a(r.n);
        prop_assert!(matches!(c.plan().first(), Some(RoundAction::Initial)));
        let king_rounds = if r.king { 3 * (t + 1) } else { 0 };
        prop_assert_eq!(c.rounds(), c.plan().len() + king_rounds);
        // A segments convert with discovery, B segments without.
        let conversions: Vec<bool> = c
            .plan()
            .iter()
            .filter_map(|a| match a {
                RoundAction::Gather { convert: Some(s) } => Some(s.discovery),
                _ => None,
            })
            .collect();
        let expected_a = r.a_blocks;
        let expected_b = r.b_seg.map_or(0, |(_, blocks)| blocks);
        prop_assert_eq!(conversions.len(), expected_a + expected_b);
        prop_assert!(conversions[..expected_a].iter().all(|&d| d));
        prop_assert!(conversions[expected_a..].iter().all(|&d| !d));
    }

    /// Widening the prefix never invalidates: prepending one more A block
    /// to an accepted composition keeps it accepted (the detection ledger
    /// is monotone).
    #[test]
    fn extra_leading_a_block_preserves_acceptance(r in recipe()) {
        if build(&r).is_err() {
            return Ok(());
        }
        let mut wider = r.clone();
        wider.a_blocks += 1;
        prop_assert!(build(&wider).is_ok(), "widening broke {wider:?}");
    }

    /// Every accepted composition reaches agreement with validity under a
    /// seeded random liar at full resilience.
    #[test]
    fn accepted_compositions_agree(r in recipe(), seed in 0u64..64) {
        let Ok(c) = build(&r) else { return Ok(()) };
        let t = t_a(r.n);
        let config = RunConfig::new(r.n, t).with_source_value(Value(1));
        let mut adversary = RandomLiar::new(FaultSelection::with_source(), seed);
        let outcome = c.execute(&config, &mut adversary);
        prop_assert!(outcome.agreement(), "{} disagreed", c.name());
        if let Some(valid) = outcome.validity() {
            prop_assert!(valid);
        }
    }
}

/// The B-entry requirement is the *least* ledger satisfying the paper's
/// inequality, across the n range where it binds.
#[test]
fn b_entry_requirement_is_minimal() {
    for n in 7..=64 {
        let t = t_a(n);
        if t == 0 {
            continue;
        }
        let req = b_entry_requirement(n, t);
        if t <= t_b(n) {
            assert_eq!(req, 0, "n={n}");
            continue;
        }
        assert!(n - 2 * t + req > (n - 1) / 2, "satisfies, n={n}");
        assert!(
            req == 0 || n - 2 * t + (req - 1) <= (n - 1) / 2,
            "minimal, n={n}"
        );
    }
}

/// The C-entry requirement satisfies both Proposition 4 branches and is
/// minimal, wherever it is satisfiable at full resilience.
#[test]
fn c_entry_requirement_is_minimal() {
    let satisfies = |n: usize, t: usize, d: usize| {
        let u = t - d;
        n > t + u * u && 2 * (n - t - u * u) > n && n + d > 2 * t && 2 * (n + d - 2 * t) > n
    };
    for n in 7..=64 {
        let t = t_a(n);
        if t == 0 {
            continue;
        }
        match c_entry_requirement(n, t) {
            Some(0) => assert!(t <= t_c(n) || satisfies(n, t, 0), "n={n}"),
            Some(d) => {
                assert!(satisfies(n, t, d), "satisfies, n={n} d={d}");
                assert!(!satisfies(n, t, d - 1), "minimal, n={n} d={d}");
            }
            None => {
                // No ledger value <= t works; verify exhaustively.
                assert!((0..=t).all(|d| !satisfies(n, t, d)), "n={n}");
            }
        }
    }
}
