//! Executable lemmas for the optimally resilient Phase King phases —
//! the king-family analogues of the paper's Persistence and Frontier
//! arguments, checked on live `KingCore` state machines driven over
//! adversarial single phases.
//!
//! Lemmas checked (see `core::optimal_king` for the proofs):
//!
//! 1. **Proposal exclusivity** — two correct processors never make
//!    different non-`⊥` proposals in the same exchange round (`n > 3t`).
//! 2. **Phase persistence** — if all correct processors start a phase
//!    unanimous, they all lock and end the phase unchanged, for *any*
//!    faulty behaviour.
//! 3. **Correct-king unanimity** — a phase whose king is correct ends
//!    with all correct processors holding the same value, from *any*
//!    starting configuration and faulty behaviour.

use proptest::prelude::*;

use shifting_gears::core::{KingCore, Params, PhaseStep};
use shifting_gears::sim::{Inbox, Payload, ProcCtx, ProcessId, Value, ValueDomain};

/// A single-phase harness: `cores[i]` is `None` for faulty processors.
struct PhaseNet {
    n: usize,
    cores: Vec<Option<KingCore>>,
}

impl PhaseNet {
    /// Builds cores for the correct processors, seeded with `values`.
    fn new(n: usize, t: usize, faulty: &[usize], values: &[Value]) -> PhaseNet {
        let params = Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        };
        let cores = (0..n)
            .map(|i| {
                (!faulty.contains(&i)).then(|| {
                    let mut core = KingCore::new(params, ProcessId(i));
                    core.set_current(values[i]);
                    core
                })
            })
            .collect();
        PhaseNet { n, cores }
    }

    /// Runs one step: honest broadcasts from correct cores, faulty slots
    /// filled per-recipient by `lie(sender, recipient) -> Option<Value>`
    /// (`None` = silent/garbage).
    fn step<F>(&mut self, phase: usize, step: PhaseStep, mut lie: F)
    where
        F: FnMut(usize, usize) -> Option<Value>,
    {
        let n = self.n;
        let outgoing: Vec<Option<Payload>> = (0..n)
            .map(|i| self.cores[i].as_mut().and_then(|c| c.outgoing(phase, step)))
            .collect();
        let is_correct: Vec<bool> = self.cores.iter().map(Option::is_some).collect();
        for i in 0..n {
            let mut inbox = Inbox::empty(n);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let payload = if is_correct[j] {
                    outgoing[j].clone().unwrap_or(Payload::Missing)
                } else {
                    match lie(j, i) {
                        Some(v) => Payload::values([v]),
                        None => Payload::Missing,
                    }
                };
                inbox.set(ProcessId(j), payload);
            }
            if let Some(core) = self.cores[i].as_mut() {
                let mut ctx = ProcCtx::new(ProcessId(i));
                core.deliver(phase, step, &inbox, &mut ctx);
            }
        }
    }

    fn correct_values(&self) -> Vec<Value> {
        self.cores.iter().flatten().map(|c| c.current()).collect()
    }

    fn king(&self, phase: usize) -> usize {
        self.cores
            .iter()
            .flatten()
            .next()
            .expect("at least one correct core")
            .king(phase)
            .index()
    }
}

/// Faulty-behaviour script: for each of the 3 steps, a per-(sender,
/// recipient) value choice in {0, 1, ⊥-ish garbage, silent}.
fn lie_strategy() -> impl Strategy<Value = Vec<Vec<Vec<u8>>>> {
    // [step][sender][recipient] -> 0..4
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(0u8..4, 13), 13),
        3,
    )
}

fn decode(choice: u8) -> Option<Value> {
    match choice {
        0 => Some(Value(0)),
        1 => Some(Value(1)),
        2 => Some(Value(999)), // out of domain -> read as ⊥/default
        _ => None,             // silent
    }
}

fn run_phase(net: &mut PhaseNet, phase: usize, script: &[Vec<Vec<u8>>]) {
    for (si, step) in [PhaseStep::Exchange, PhaseStep::Propose, PhaseStep::King]
        .into_iter()
        .enumerate()
    {
        let table = &script[si];
        net.step(phase, step, |s, r| decode(table[s][r]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 2 (phase persistence): unanimity in, unanimity out — same
    /// value — under arbitrary faulty behaviour, even with a faulty king.
    #[test]
    fn persistence_survives_any_phase(
        script in lie_strategy(),
        v in 0u16..2,
        phase in 0usize..3,
    ) {
        // n = 13, t = 4; faulty set includes the phase-0..2 kings
        // (P1, P2, P3) so the king is always faulty here.
        let n = 13;
        let faulty = [1usize, 2, 3, 7];
        let values = vec![Value(v); n];
        let mut net = PhaseNet::new(n, 4, &faulty, &values);
        run_phase(&mut net, phase, &script);
        let after = net.correct_values();
        prop_assert!(after.iter().all(|&x| x == Value(v)), "{after:?}");
    }

    /// Lemma 3 (correct-king unanimity): any starting values, any faulty
    /// behaviour — if the phase king is correct, the phase ends unanimous.
    #[test]
    fn correct_king_restores_unanimity(
        script in lie_strategy(),
        seeds in proptest::collection::vec(0u16..2, 13),
    ) {
        let n = 13;
        // t = 4 faults, none of which is P1 = king of phase 0.
        let faulty = [2usize, 5, 8, 11];
        let values: Vec<Value> = seeds.into_iter().map(Value).collect();
        let mut net = PhaseNet::new(n, 4, &faulty, &values);
        assert_eq!(net.king(0), 1, "phase-0 king is P1");
        run_phase(&mut net, 0, &script);
        let after = net.correct_values();
        prop_assert!(
            after.windows(2).all(|w| w[0] == w[1]),
            "correct king failed to unify: {after:?}"
        );
    }

    /// Lemma 1 (proposal exclusivity): after any exchange round, the
    /// non-⊥ proposals of correct processors all agree.
    #[test]
    fn correct_proposals_never_conflict(
        script in lie_strategy(),
        seeds in proptest::collection::vec(0u16..2, 13),
    ) {
        let n = 13;
        let faulty = [0usize, 4, 9, 12];
        let values: Vec<Value> = seeds.into_iter().map(Value).collect();
        let mut net = PhaseNet::new(n, 4, &faulty, &values);
        let table = &script[0];
        net.step(0, PhaseStep::Exchange, |s, r| decode(table[s][r]));
        // Inspect proposals via the propose-round broadcast.
        let mut proposals = Vec::new();
        for core in net.cores.iter_mut().flatten() {
            // value_at is representation-agnostic: the propose broadcast
            // is a bit-packed single value for 0/1 proposals and an
            // out-of-domain sentinel vector for bot.
            let sent = core
                .outgoing(0, PhaseStep::Propose)
                .and_then(|p| p.value_at(0));
            if let Some(v) = sent {
                if ValueDomain::binary().contains(v) {
                    proposals.push(v);
                }
            }
        }
        prop_assert!(
            proposals.windows(2).all(|w| w[0] == w[1]),
            "conflicting correct proposals: {proposals:?}"
        );
    }
}

/// Deterministic sanity: two unanimous phases in sequence stay unanimous
/// (persistence composes across phases).
#[test]
fn persistence_composes_across_phases() {
    let n = 7;
    let faulty = [3usize, 6];
    let values = vec![Value(1); n];
    let mut net = PhaseNet::new(n, 2, &faulty, &values);
    for phase in 0..3 {
        let script = vec![vec![vec![0u8; n]; n]; 3]; // all faults say 0
        run_phase(&mut net, phase, &script);
        assert!(net.correct_values().iter().all(|&v| v == Value(1)));
    }
}
