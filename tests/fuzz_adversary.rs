//! Property-based adversary fuzzing.
//!
//! The exhaustive checks in `exhaustive_adversary.rs` cover small
//! instances completely; here proptest drives the same tape machinery
//! over *larger* instances — random fault sets, random tapes over the
//! full move alphabet, every algorithm — asserting the two paper
//! invariants (agreement, validity) on every sampled execution.

use proptest::prelude::*;

use shifting_gears::adversary::{Move, TapeAdversary, ALL_MOVES};
use shifting_gears::core::{execute, AlgorithmSpec};
use shifting_gears::sim::{ProcessId, RunConfig, Value};

/// A strategy for a tape of length `len` over the full move alphabet.
fn tape(len: usize) -> impl Strategy<Value = Vec<Move>> {
    proptest::collection::vec((0..ALL_MOVES.len()).prop_map(|i| ALL_MOVES[i]), len.max(1))
}

/// A strategy choosing `t` distinct faulty processors out of `n`
/// (possibly including the source).
fn fault_set(n: usize, t: usize) -> impl Strategy<Value = Vec<ProcessId>> {
    Just((0..n).map(ProcessId).collect::<Vec<_>>())
        .prop_shuffle()
        .prop_map(move |ids| ids.into_iter().take(t).collect())
}

/// Runs one fuzzed execution and asserts the paper's two conditions.
fn check(spec: AlgorithmSpec, n: usize, t: usize, faulty: Vec<ProcessId>, tape: Vec<Move>) {
    for source_value in [Value(0), Value(1)] {
        let mut adversary =
            TapeAdversary::new(faulty.iter().copied(), tape.clone()).expect("non-empty tape");
        let config = RunConfig::new(n, t).with_source_value(source_value);
        let outcome = execute(spec, &config, &mut adversary).expect("valid spec");
        assert!(
            outcome.agreement(),
            "agreement violated: spec {}, faulty {:?}, tape {:?}",
            spec.name(),
            faulty,
            adversary.tape()
        );
        if let Some(valid) = outcome.validity() {
            assert!(
                valid,
                "validity violated: spec {}, faulty {:?}, tape {:?}",
                spec.name(),
                faulty,
                adversary.tape()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exponential_survives_random_tapes(
        faulty in fault_set(10, 3),
        moves in tape(128),
    ) {
        check(AlgorithmSpec::Exponential, 10, 3, faulty, moves);
    }

    #[test]
    fn algorithm_a_survives_random_tapes(
        faulty in fault_set(13, 4),
        moves in tape(256),
    ) {
        check(AlgorithmSpec::AlgorithmA { b: 3 }, 13, 4, faulty, moves);
    }

    #[test]
    fn algorithm_b_survives_random_tapes(
        faulty in fault_set(13, 3),
        moves in tape(256),
    ) {
        check(AlgorithmSpec::AlgorithmB { b: 2 }, 13, 3, faulty, moves);
    }

    #[test]
    fn algorithm_c_survives_random_tapes(
        faulty in fault_set(18, 3),
        moves in tape(256),
    ) {
        check(AlgorithmSpec::AlgorithmC, 18, 3, faulty, moves);
    }

    #[test]
    fn hybrid_survives_random_tapes(
        faulty in fault_set(13, 4),
        moves in tape(256),
    ) {
        check(AlgorithmSpec::Hybrid { b: 3 }, 13, 4, faulty, moves);
    }

    #[test]
    fn optimal_king_survives_random_tapes(
        faulty in fault_set(13, 4),
        moves in tape(256),
    ) {
        check(AlgorithmSpec::OptimalKing, 13, 4, faulty, moves);
    }

    #[test]
    fn king_shift_survives_random_tapes(
        faulty in fault_set(13, 4),
        moves in tape(256),
    ) {
        check(AlgorithmSpec::KingShift { b: 3 }, 13, 4, faulty, moves);
    }

    #[test]
    fn dynamic_king_survives_random_tapes(
        faulty in fault_set(13, 4),
        moves in tape(256),
    ) {
        // Random tapes may or may not trip the shift checkpoints; both
        // the shifted and never-shift paths must agree.
        check(AlgorithmSpec::DynamicKing { b: 3 }, 13, 4, faulty, moves);
    }

    #[test]
    fn phase_king_survives_random_tapes(
        faulty in fault_set(13, 3),
        moves in tape(256),
    ) {
        check(AlgorithmSpec::PhaseKing, 13, 3, faulty, moves);
    }

    #[test]
    fn dolev_strong_survives_random_tapes(
        faulty in fault_set(8, 4),
        moves in tape(128),
    ) {
        // Tape moves forge nothing: value-vector payloads are simply
        // unverifiable to Dolev–Strong receivers, exercising its
        // discard-invalid paths.
        check(AlgorithmSpec::DolevStrong, 8, 4, faulty, moves);
    }
}

/// Sanity guards for the strategies themselves.
#[test]
fn fault_set_strategy_respects_bounds() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    for _ in 0..32 {
        let set = fault_set(10, 3).new_tree(&mut runner).unwrap().current();
        assert_eq!(set.len(), 3);
        let mut sorted: Vec<usize> = set.iter().map(|p| p.index()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "members must be distinct");
        assert!(sorted.iter().all(|&i| i < 10));
    }
}
