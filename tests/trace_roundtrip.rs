//! Property tests for the scenario-trace contract.
//!
//! Three guarantees, fuzzed across the named adversary suite, seeds, and
//! cells:
//!
//! 1. **Record → serialize → parse → replay is bit-exact.** Recording a
//!    run wraps the live strategy without changing it; the resulting
//!    `sg-scenario/1` JSON parses back to an equal scenario; replaying it
//!    reproduces the recorded verdict — including the fingerprint-relevant
//!    metric sample — exactly.
//! 2. **Replay is execution-mode independent.** The same trace replays
//!    identically under pooled and fresh protocol instances.
//! 3. **Damaged artifacts fail structurally.** Truncated JSON and
//!    mutated traces produce `Err`, never a panic.

use std::sync::Mutex;

use proptest::prelude::*;
use serde::json::Value as Json;
use serde::{FromJson, ToJson};
use shifting_gears::adversary::standard_suite;
use shifting_gears::analysis::scenario::{record, replay};
use shifting_gears::analysis::{Scenario, SweepConfig};
use shifting_gears::core::AlgorithmSpec;
use shifting_gears::sim::set_instance_pooling;

/// Serializes tests that flip the process-wide pooling toggle.
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

/// The cells the round-trip property samples: one king protocol, one
/// exponential, both unauthenticated (signed payloads have no trace
/// normal form and are rejected by recording, by design).
fn cells() -> [SweepConfig; 3] {
    [
        SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
        SweepConfig::traced(AlgorithmSpec::Exponential, 5, 1),
        SweepConfig::traced(AlgorithmSpec::PhaseKing, 9, 2),
    ]
}

/// One full record → serialize → parse → replay check, pooled and fresh.
fn check_roundtrip(family_index: usize, seed: u64, cell_index: usize) -> Result<(), TestCaseError> {
    let mut suite = standard_suite(seed);
    let adversary = suite.swap_remove(family_index % suite.len());
    let name = adversary.name();
    let config = cells()[cell_index % cells().len()];
    let (scenario, outcome) =
        record(&config, adversary).unwrap_or_else(|e| panic!("recording {name} failed: {e}"));

    // Recording must not have perturbed the run: the verdict is what the
    // outcome says.
    prop_assert_eq!(scenario.verdict.agreement, outcome.agreement());
    prop_assert_eq!(scenario.verdict.rounds_used, outcome.rounds_used);

    // Wire round-trip preserves the scenario exactly.
    let text = scenario.to_json().to_string();
    let parsed = Scenario::from_json(&Json::parse(&text).expect("serializer emits valid JSON"))
        .expect("serialized scenario parses back");
    prop_assert_eq!(&parsed, &scenario);

    // Replay is bit-exact under pooled instances…
    let pooled = replay(&parsed).expect("pooled replay runs");
    prop_assert_eq!(pooled, scenario.verdict);

    // …and under fresh ones.
    let fresh = {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_instance_pooling(false);
        let verdict = replay(&parsed);
        set_instance_pooling(true);
        verdict.expect("fresh replay runs")
    };
    prop_assert_eq!(fresh, scenario.verdict);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn named_families_record_and_replay_bit_exact(
        family_index in 0usize..32,
        seed in 0u64..1024,
        cell_index in 0usize..3,
    ) {
        check_roundtrip(family_index, seed, cell_index)?;
    }

    /// Truncating the serialized artifact anywhere yields a structured
    /// error somewhere in parse-or-replay — never a panic, and never a
    /// silently "successful" replay of a half-artifact that still claims
    /// the recorded verdict came from the recorded trace.
    #[test]
    fn truncated_artifacts_error_structurally(
        seed in 0u64..256,
        cut_permille in 0usize..1000,
    ) {
        let mut suite = standard_suite(seed);
        let adversary = suite.swap_remove(seed as usize % suite.len());
        let config = SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2);
        let (scenario, _) = record(&config, adversary).expect("recordable");
        let text = scenario.to_json().to_string();
        let cut = text.len() * cut_permille / 1000;
        let damaged = &text[..cut];
        if let Ok(json) = Json::parse(damaged) {
            if let Ok(parsed) = Scenario::from_json(&json) {
                // A prefix that still parses must be the whole artifact.
                prop_assert_eq!(parsed, scenario);
            }
        }
    }

    /// Mutating the recorded steps desyncs replay into a structured
    /// error; dropping a suffix of calls is detected, not papered over.
    #[test]
    fn mutated_traces_error_structurally(
        seed in 0u64..256,
        drop in 1usize..8,
    ) {
        let mut suite = standard_suite(seed);
        let adversary = suite.swap_remove(seed as usize % suite.len());
        let config = SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2);
        let (mut scenario, _) = record(&config, adversary).expect("recordable");
        if scenario.trace.steps.is_empty() {
            // A no-op strategy draw (empty corrupted set) has nothing to
            // truncate; nothing to check.
            return Ok(());
        }
        let keep = scenario.trace.steps.len().saturating_sub(drop);
        scenario.trace.steps.truncate(keep);
        prop_assert!(replay(&scenario).is_err());
    }
}
