//! Executable lemmas for the dynamic gearing layer.
//!
//! Two claims from the early-stopping literature (the Aspnes survey's
//! framing of the rounds-vs-faults tradeoff), pinned as properties:
//!
//! * **`min(f+2, t+1)`** — Dolev–Strong's quiescence rule halts within
//!   `min(f_actual + 2, t + 1)` rounds: a chain carrying a *new* value at
//!   round `r` needs `r − 1` faulty signatures (a correct signer would
//!   have relayed it earlier), so activity dies within two rounds of the
//!   actual fault count, whatever the strategy (honest signatures are
//!   unforgeable).
//! * **`O(f)` expedite** — the gear-shifted king family's dynamic
//!   schedule is linear in the *actual* fault count on the scenario
//!   workloads: every prefix block an omission-style adversary delays
//!   costs it a detection it does not have, and every king phase it
//!   spoils burns a faulty king, so `rounds_used` is bounded by
//!   `1 + (f+1)·b + 3·(f+2)` — independent of `t` — while the static
//!   plan's tree prefix always runs to its worst-case end.

use std::sync::Mutex;

use proptest::prelude::*;
use shifting_gears::adversary::{ChainRevealer, Crash, FaultSelection, RandomLiar, Silent};
use shifting_gears::core::{
    dynamic_king_blocks, execute, AlgorithmSpec, ShiftComposition, ShiftPlanBuilder,
};
use shifting_gears::sim::{set_early_stopping, Adversary, NoFaults, RunConfig, Value};

/// Serializes the tests that drive the process-global early-stopping
/// toggle (the same convention as `tests/early_stopping.rs`).
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

/// The equivalent static gear plan of `DynamicKing { b }` at `(n, t)`:
/// the same A-block prefix compiled as a fixed composition with the same
/// king tail, shifting only at the precompiled boundary.
fn static_equivalent(n: usize, t: usize, b: usize) -> ShiftComposition {
    ShiftPlanBuilder::new(n, t)
        .a_blocks(b, dynamic_king_blocks(t, b))
        .king_tail()
        .build()
        .expect("A blocks + king tail validate")
}

/// One scenario-family strategy instance capped at `f` actual faults.
fn scenario(idx: usize, seed: u64, f: usize) -> Box<dyn Adversary> {
    let sel = FaultSelection::without_source().limit(f);
    match idx {
        0 => Box::new(Crash::new(sel, 2)),
        1 => Box::new(Silent::new(sel)),
        2 => Box::new(RandomLiar::new(sel, seed)),
        _ => Box::new(ChainRevealer::new(sel, 2, 2, seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The `min(f+2, t+1)` lemma, executable: Dolev–Strong's
    /// status-driven runs never exceed the bound, for any strategy in
    /// the sample (including the chain-revealer, which stages its
    /// reveals precisely to stretch the schedule) at `f ∈ {0, 1, t}`.
    #[test]
    fn dolev_strong_halts_within_min_f_plus_2(
        seed in 0u64..1_000,
        adv_idx in 0usize..4,
        f_sel in 0usize..3,
    ) {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for (n, t) in [(5usize, 3usize), (8, 5)] {
            let f = [0, 1, t][f_sel].min(t);
            let config = RunConfig::new(n, t).with_source_value(Value(1));
            let outcome = execute(
                AlgorithmSpec::DolevStrong,
                &config,
                scenario(adv_idx, seed, f).as_mut(),
            )
            .expect("valid parameters");
            outcome.assert_correct();
            let f_actual = outcome.faulty.len();
            prop_assert!(f_actual <= f, "selection overran its budget");
            prop_assert!(
                outcome.rounds_used <= (f_actual + 2).min(t + 1),
                "dolev-strong used {} rounds at f = {f_actual}, t = {t} (bound {})",
                outcome.rounds_used,
                (f_actual + 2).min(t + 1),
            );
        }
    }

    /// The `O(f)` expedite claim for the gear-shifted king family on the
    /// omission-style scenario workloads (crash / silent, where every
    /// correct processor observes the same faulty behaviour): the
    /// dynamic schedule is bounded by `1 + (f+1)·b + 3·(f+2)` —
    /// independent of `t` — and never exceeds the equivalent static
    /// composition's rounds.
    #[test]
    fn dynamic_king_expedite_is_linear_in_f(
        seed in 0u64..1_000,
        adv_idx in 0usize..2,
        f_sel in 0usize..3,
    ) {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let b = 3usize;
        for (n, t) in [(10usize, 3usize), (16, 5)] {
            let f = [0, 1, t][f_sel].min(t);
            let config = RunConfig::new(n, t).with_source_value(Value(1));
            let mk = || scenario(adv_idx, seed, f);

            let dynamic = execute(AlgorithmSpec::DynamicKing { b }, &config, mk().as_mut())
                .expect("valid parameters");
            dynamic.assert_correct();
            let f_actual = dynamic.faulty.len();

            let static_comp = static_equivalent(n, t, b);
            let fixed = static_comp.execute(&config, mk().as_mut());
            fixed.assert_correct();
            prop_assert_eq!(fixed.faulty, dynamic.faulty.clone(), "scenario families are deterministic");

            prop_assert!(
                dynamic.rounds_used <= fixed.rounds_used,
                "dynamic {} rounds exceeded the equivalent static composition's {}",
                dynamic.rounds_used,
                fixed.rounds_used,
            );
            prop_assert!(
                dynamic.rounds_used <= 1 + (f_actual + 1) * b + 3 * (f_actual + 2),
                "dynamic-king used {} rounds at f = {f_actual}, b = {b}: not O(f)",
                dynamic.rounds_used,
            );
            prop_assert!(
                dynamic.rounds_used <= dynamic.scheduled_rounds,
                "overran the worst-case schedule"
            );
        }
    }
}

/// At `f ≪ t` the dynamic composition *strictly* beats the equivalent
/// static [`ShiftComposition`] — the acceptance-criterion comparison,
/// pinned at the benchmark parameters: the static plan's tree prefix
/// holds every run to round 15 while the dynamic plan shifts at the
/// first quiet block and locks at round 6.
#[test]
fn dynamic_beats_static_at_low_f() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, t, b) = (16, 5, 3);
    let config = RunConfig::new(n, t).with_source_value(Value(1));
    let static_comp = static_equivalent(n, t, b);
    for f in [0usize, 1] {
        let run_static = |f: usize| {
            let outcome = static_comp.execute(&config, scenario(0, 7, f).as_mut());
            outcome.assert_correct();
            outcome.rounds_used
        };
        let dynamic = execute(
            AlgorithmSpec::DynamicKing { b },
            &config,
            scenario(0, 7, f).as_mut(),
        )
        .unwrap();
        dynamic.assert_correct();
        assert!(
            dynamic.rounds_used < run_static(f),
            "f = {f}: dynamic {} not below static {}",
            dynamic.rounds_used,
            run_static(f)
        );
        assert_eq!(dynamic.rounds_used, 1 + b + 2, "f = {f}: shift + lock");
        assert!(dynamic.early_stopped);
    }
    // The dynamic composition built through the ShiftPlanBuilder makes
    // the same runtime decisions as the spec-level protocol.
    let dynamic_comp = ShiftPlanBuilder::new(n, t)
        .a_blocks(b, dynamic_king_blocks(t, b))
        .king_tail()
        .dynamic()
        .build()
        .expect("dynamic composition validates");
    let outcome = dynamic_comp.execute(&config, &mut NoFaults);
    outcome.assert_correct();
    assert_eq!(outcome.rounds_used, 1 + b + 2);
}

/// Dynamic dispatch is part of the schedule, not an engine observation:
/// with early stopping disabled the shift still commits (the tail is
/// entered early) but the tail then runs its full fixed length.
#[test]
fn gear_shifts_survive_early_stopping_off() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, t, b) = (16, 5, 3);
    let config = RunConfig::new(n, t).with_source_value(Value(1));
    set_early_stopping(false);
    let outcome = execute(AlgorithmSpec::DynamicKing { b }, &config, &mut NoFaults).unwrap();
    set_early_stopping(true);
    outcome.assert_correct();
    // Shift at the first block boundary (round 1 + b), then the full
    // 3·(t+1)-round tail.
    assert_eq!(outcome.rounds_used, 1 + b + 3 * (t + 1));
    assert!(outcome.rounds_used < outcome.scheduled_rounds);
    assert!(outcome.early_stopped, "shortened schedules report expedite");
}

/// The never-shift path: a detection-forcing adversary at full budget
/// holds the dynamic plan in its prefix, and the run lands on the static
/// schedule shape (prefix + tail) — dynamic dispatch degrades to the
/// precompiled plan instead of guessing.
#[test]
fn detection_forcing_adversaries_delay_the_shift() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, t, b) = (16, 5, 3);
    let config = RunConfig::new(n, t).with_source_value(Value(1));
    let mut revealer = ChainRevealer::new(FaultSelection::without_source(), 2, 2, 7);
    let dynamic = execute(AlgorithmSpec::DynamicKing { b }, &config, &mut revealer).unwrap();
    dynamic.assert_correct();
    let first_checkpoint_end = 1 + b + 2;
    assert!(
        dynamic.rounds_used > first_checkpoint_end,
        "staged reveals should delay the shift past the first checkpoint \
         (used {} rounds)",
        dynamic.rounds_used
    );
}
