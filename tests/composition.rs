//! Integration tests for the parallel-composition layers: interactive
//! consistency / consensus and multivalued broadcast, over the paper's
//! algorithms, against the adversary suite.

use shifting_gears::adversary::{quick_suite, FaultSelection, RandomLiar, TwoFaced};
use shifting_gears::core::{run_consensus, run_multivalued, AlgorithmSpec};
use shifting_gears::sim::{RunConfig, Value, ValueDomain};

#[test]
fn consensus_over_exponential_against_quick_suite() {
    let n = 7;
    let t = 2;
    let inputs: Vec<Value> = (0..n).map(|i| Value((i % 2) as u16)).collect();
    for mut adversary in quick_suite(0xAB) {
        let config = RunConfig::new(n, t);
        let outcome = run_consensus(
            AlgorithmSpec::Exponential,
            &config,
            inputs.clone(),
            adversary.as_mut(),
        );
        assert!(
            outcome.agreement(),
            "consensus diverged under {}",
            outcome.adversary
        );
    }
}

#[test]
fn consensus_unanimous_inputs_survive_faults() {
    // All correct processors hold 1; consensus must be 1 (the plurality
    // of an agreed vector in which ≥ n−t slots are 1).
    let n = 7;
    let t = 2;
    let inputs = vec![Value(1); n];
    let mut adversary = TwoFaced::new(FaultSelection::without_source());
    let config = RunConfig::new(n, t);
    let outcome = run_consensus(AlgorithmSpec::Exponential, &config, inputs, &mut adversary);
    assert!(outcome.agreement());
    assert_eq!(outcome.decision(), Some(Value(1)));
}

#[test]
fn consensus_over_hybrid_base() {
    let n = 10;
    let t = 3;
    // Every *correct* processor holds 1 (the liar corrupts P1..P3, whose
    // slots may resolve arbitrarily); the agreed vector then has >= 7
    // one-slots, so the plurality is 1.
    let inputs: Vec<Value> = (0..n)
        .map(|i| Value(u16::from(!(1..=3).contains(&i))))
        .collect();
    let mut adversary = RandomLiar::new(FaultSelection::without_source(), 0x11);
    let config = RunConfig::new(n, t);
    let outcome = run_consensus(
        AlgorithmSpec::Hybrid { b: 3 },
        &config,
        inputs,
        &mut adversary,
    );
    assert!(outcome.agreement());
    assert_eq!(outcome.decision(), Some(Value(1)));
}

#[test]
fn multivalued_broadcast_against_quick_suite() {
    for mut adversary in quick_suite(0xCD) {
        let config = RunConfig::new(7, 2)
            .with_domain(ValueDomain::new(8))
            .with_source_value(Value(6));
        let outcome = run_multivalued(AlgorithmSpec::Exponential, &config, adversary.as_mut());
        outcome.assert_correct();
    }
}

#[test]
fn multivalued_over_algorithm_b() {
    let config = RunConfig::new(13, 3)
        .with_domain(ValueDomain::new(16))
        .with_source_value(Value(11));
    let mut adversary = TwoFaced::new(FaultSelection::without_source());
    let outcome = run_multivalued(AlgorithmSpec::AlgorithmB { b: 2 }, &config, &mut adversary);
    outcome.assert_correct();
    assert_eq!(outcome.decision(), Some(Value(11)));
}

#[test]
fn multivalued_message_cost_scales_with_bit_width() {
    // Message length multiplies by ⌈log2 |V|⌉ (plus 2 framing values per
    // instance) relative to the binary run.
    let mut binary_adv = RandomLiar::new(FaultSelection::without_source(), 1);
    let binary = shifting_gears::core::execute(
        AlgorithmSpec::Exponential,
        &RunConfig::new(7, 2).with_source_value(Value(1)),
        &mut binary_adv,
    )
    .unwrap();

    let mut adv = RandomLiar::new(FaultSelection::without_source(), 1);
    let config = RunConfig::new(7, 2)
        .with_domain(ValueDomain::new(16)) // 4 bits
        .with_source_value(Value(9));
    let multi = run_multivalued(AlgorithmSpec::Exponential, &config, &mut adv);
    multi.assert_correct();

    let bits = 4;
    let framing = 2 * bits;
    assert_eq!(
        multi.metrics.max_message_values(),
        bits * binary.metrics.max_message_values() + framing
    );
}
