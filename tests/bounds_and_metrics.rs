//! Quantitative integration tests: measured rounds, message sizes, local
//! space and determinism against the paper's stated bounds.

use shifting_gears::adversary::{ChainRevealer, FaultSelection, RandomLiar};
use shifting_gears::analysis::bounds::{
    blocked_max_message_values, c_max_message_values, exponential_max_message_values,
};
use shifting_gears::core::schedule::{algorithm_a_rounds_bound, algorithm_b_rounds_bound};
use shifting_gears::core::{execute, t_a, t_b, t_c, AlgorithmSpec, HybridSchedule};
use shifting_gears::sim::{Outcome, RunConfig, Value};

fn run(spec: AlgorithmSpec, n: usize, t: usize, seed: u64) -> Outcome {
    let config = RunConfig::new(n, t).with_source_value(Value(1));
    let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, 2, seed);
    let outcome = execute(spec, &config, &mut adversary).expect("valid parameters");
    outcome.assert_correct();
    outcome
}

#[test]
fn exponential_rounds_and_message_sizes_match_proposition_1() {
    for (n, t) in [(4, 1), (7, 2), (10, 3)] {
        let outcome = run(AlgorithmSpec::Exponential, n, t, 3);
        assert_eq!(outcome.rounds_used, t + 1);
        assert_eq!(
            outcome.metrics.max_message_values() as u128,
            exponential_max_message_values(n, t),
            "n={n} t={t}"
        );
    }
}

#[test]
fn algorithm_a_message_sizes_bounded_by_level_b_minus_1() {
    for (n, b) in [(13, 3), (16, 3), (16, 4)] {
        let t = t_a(n);
        let outcome = run(AlgorithmSpec::AlgorithmA { b }, n, t, 5);
        assert!(outcome.rounds_used <= algorithm_a_rounds_bound(t, b));
        assert_eq!(
            outcome.metrics.max_message_values() as u128,
            blocked_max_message_values(n, b),
            "n={n} b={b}"
        );
    }
}

#[test]
fn algorithm_b_message_sizes_bounded_by_level_b_minus_1() {
    for (n, b) in [(13, 2), (17, 3), (21, 3)] {
        let t = t_b(n);
        let outcome = run(AlgorithmSpec::AlgorithmB { b }, n, t, 7);
        assert!(outcome.rounds_used <= algorithm_b_rounds_bound(t, b));
        assert_eq!(
            outcome.metrics.max_message_values() as u128,
            blocked_max_message_values(n, b),
            "n={n} b={b}"
        );
    }
}

#[test]
fn algorithm_c_messages_stay_linear_in_n() {
    for n in [18, 32, 50] {
        let t = t_c(n);
        let outcome = run(AlgorithmSpec::AlgorithmC, n, t, 9);
        assert_eq!(outcome.rounds_used, t + 1);
        assert_eq!(
            outcome.metrics.max_message_values() as u128,
            c_max_message_values(n)
        );
        // Peak tree: root + intermediates + n×n leaf matrix (+1 for the
        // no-rep root kept in sync).
        assert!(outcome.metrics.peak_tree_nodes <= (2 + n + n * n) as u64);
    }
}

#[test]
fn hybrid_rounds_match_main_theorem_and_messages_match_a() {
    for (n, b) in [(10, 3), (13, 3), (16, 3), (16, 4)] {
        let t = t_a(n);
        let schedule = HybridSchedule::compute(n, b);
        let outcome = run(AlgorithmSpec::Hybrid { b }, n, t, 11);
        assert_eq!(outcome.rounds_used, schedule.total_rounds());
        assert_eq!(outcome.rounds_used, schedule.main_theorem_rounds());
        // The hybrid's biggest message is the same O(n^b) gather as A's
        // (level b−1), provided its A phase contains a full block.
        if schedule.a_blocks.contains(&b) {
            assert_eq!(
                outcome.metrics.max_message_values() as u128,
                blocked_max_message_values(n, b),
                "n={n} b={b}"
            );
        }
    }
}

#[test]
fn executions_are_deterministic() {
    let config = RunConfig::new(13, 4).with_source_value(Value(1));
    let outcomes: Vec<Outcome> = (0..2)
        .map(|_| {
            let mut adversary = RandomLiar::new(FaultSelection::with_source(), 99);
            execute(AlgorithmSpec::Hybrid { b: 3 }, &config, &mut adversary).expect("valid")
        })
        .collect();
    assert_eq!(outcomes[0].decisions, outcomes[1].decisions);
    assert_eq!(outcomes[0].metrics, outcomes[1].metrics);
}

#[test]
fn honest_traffic_is_adversary_independent() {
    // The schedule fixes what honest processors send; two very different
    // adversaries must produce identical honest traffic shapes.
    let config = RunConfig::new(13, 4).with_source_value(Value(1));
    let mut liar = RandomLiar::new(FaultSelection::without_source(), 1);
    let mut chain = ChainRevealer::new(FaultSelection::without_source(), 2, 2, 2);
    let a = execute(AlgorithmSpec::AlgorithmA { b: 3 }, &config, &mut liar).expect("valid");
    let b = execute(AlgorithmSpec::AlgorithmA { b: 3 }, &config, &mut chain).expect("valid");
    assert_eq!(
        a.metrics.max_message_values(),
        b.metrics.max_message_values()
    );
    assert_eq!(a.metrics.total_messages(), b.metrics.total_messages());
}

#[test]
fn over_threshold_runs_do_not_panic() {
    // With more than t faults no guarantee applies, but the system must
    // still run to completion (decisions may disagree).
    let config = RunConfig::new(7, 2).with_source_value(Value(1));
    let mut adversary = RandomLiar::new(
        shifting_gears::adversary::FaultSelection::explicit([
            shifting_gears::sim::ProcessId(1),
            shifting_gears::sim::ProcessId(2),
            shifting_gears::sim::ProcessId(3),
        ]),
        4,
    );
    let outcome = shifting_gears::sim::run(
        &config,
        &mut adversary,
        AlgorithmSpec::Exponential.factory(&config),
    );
    assert_eq!(outcome.rounds_used, 3);
    assert_eq!(outcome.faulty.len(), 3);
}

#[test]
fn local_ops_grow_polynomially_for_blocked_families() {
    // Theorem 2/3's point: at fixed b, doubling n must not explode local
    // computation beyond ~n^{b+1}.
    let small = run(AlgorithmSpec::AlgorithmB { b: 2 }, 9, 2, 21);
    let large = run(AlgorithmSpec::AlgorithmB { b: 2 }, 17, 4, 21);
    let ratio = large.metrics.max_local_ops() as f64 / small.metrics.max_local_ops() as f64;
    // n grew ~1.9x; n^{b+1} = n^3 predicts ~6.7x; t doubled adds ~2x
    // more rounds. Anything under ~40x is comfortably polynomial.
    assert!(ratio < 40.0, "ratio {ratio}");
}
