//! Trace-based tests of the shifting machinery itself: shifts fire
//! exactly at block boundaries, the hybrid's conversions follow Fig. 3's
//! A→B→C order, and preferred values survive shifts (Strong Persistence).

use shifting_gears::adversary::{ChainRevealer, DoubleTalk, FaultSelection};
use shifting_gears::core::{execute, AlgorithmSpec, HybridSchedule, RoundAction};
use shifting_gears::sim::{ProcessId, RunConfig, TraceEvent, Value};

/// Shift events of one correct processor, as (round, conversion name).
fn shifts_of(outcome: &shifting_gears::sim::Outcome, p: ProcessId) -> Vec<(usize, String)> {
    outcome
        .trace
        .by(p)
        .filter_map(|e| match &e.event {
            TraceEvent::Shift { conversion, .. } => Some((e.round, conversion.clone())),
            _ => None,
        })
        .collect()
}

fn first_correct(outcome: &shifting_gears::sim::Outcome) -> ProcessId {
    (0..outcome.config.n)
        .map(ProcessId)
        .find(|p| !outcome.faulty.contains(*p))
        .expect("some correct processor")
}

#[test]
fn algorithm_b_shifts_exactly_at_block_ends() {
    let (n, t, b) = (13, 3, 2);
    let config = RunConfig::new(n, t)
        .with_source_value(Value(1))
        .with_trace();
    let mut adversary = DoubleTalk::new(FaultSelection::without_source());
    let outcome = execute(AlgorithmSpec::AlgorithmB { b }, &config, &mut adversary).unwrap();
    outcome.assert_correct();

    let witness = first_correct(&outcome);
    let shifts = shifts_of(&outcome, witness);
    // t=3, b=2: blocks [2, 2] -> conversions at rounds 3 and 5.
    assert_eq!(
        shifts,
        vec![(3, "resolve".to_string()), (5, "resolve".to_string())]
    );
}

#[test]
fn hybrid_conversion_sequence_follows_figure_3() {
    let (n, b) = (13, 3);
    let t = 4;
    let schedule = HybridSchedule::compute(n, b);
    let config = RunConfig::new(n, t)
        .with_source_value(Value(1))
        .with_trace();
    let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, 3, 5);
    let outcome = execute(AlgorithmSpec::Hybrid { b }, &config, &mut adversary).unwrap();
    outcome.assert_correct();

    let witness = first_correct(&outcome);
    let shifts = shifts_of(&outcome, witness);

    // A-phase shifts use resolve', B-phase shifts use resolve, C-phase
    // rounds shift with resolve every round.
    let expected_a = schedule.a_blocks.len();
    let expected_b = schedule.b_blocks.len();
    let expected_c = schedule.c_rounds - 1; // RepFirstGather doesn't shift
    assert_eq!(shifts.len(), expected_a + expected_b + expected_c);
    for (i, (round, conversion)) in shifts.iter().enumerate() {
        if i < expected_a {
            assert_eq!(conversion, "resolve'", "shift {i} at round {round}");
            assert!(*round <= schedule.k_ab);
        } else {
            assert_eq!(conversion, "resolve", "shift {i} at round {round}");
            assert!(*round > schedule.k_ab);
        }
    }
    // The last A-phase shift lands exactly on k_AB (the A→B boundary).
    assert_eq!(shifts[expected_a - 1].0, schedule.k_ab);
    // The last B-phase shift lands exactly on k_AB + k_BC (B→C boundary).
    assert_eq!(
        shifts[expected_a + expected_b - 1].0,
        schedule.k_ab + schedule.k_bc
    );
}

#[test]
fn hybrid_plan_matches_executed_phases() {
    let (n, b) = (16, 3);
    let t = 5;
    let schedule = HybridSchedule::compute(n, b);
    let plan = AlgorithmSpec::Hybrid { b }.plan(n, t).unwrap();
    // Counts: 1 initial + (k_ab − 1) A-gathers + k_bc B-gathers + C rounds.
    let gathers = plan
        .iter()
        .filter(|a| matches!(a, RoundAction::Gather { .. }))
        .count();
    let reps = plan.iter().filter(|a| a.is_rep()).count();
    assert_eq!(gathers, schedule.k_ab - 1 + schedule.k_bc);
    assert_eq!(reps, schedule.c_rounds);
}

#[test]
fn preferred_value_survives_every_shift_when_source_correct() {
    // Strong Persistence in action: with a correct source, the traced
    // preferred value after every shift equals the source's value.
    let (n, t, b) = (13, 4, 3);
    let config = RunConfig::new(n, t)
        .with_source_value(Value(1))
        .with_trace();
    let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, 2, 13);
    let outcome = execute(AlgorithmSpec::Hybrid { b }, &config, &mut adversary).unwrap();
    outcome.assert_correct();

    for p in (0..n).map(ProcessId) {
        if outcome.faulty.contains(p) {
            continue;
        }
        for e in outcome.trace.by(p) {
            if let TraceEvent::Shift { preferred, .. } = &e.event {
                assert_eq!(
                    *preferred,
                    Value(1),
                    "{p} lost the persistent value at round {}",
                    e.round
                );
            }
        }
    }
}

#[test]
fn masked_faults_stop_influencing_preferred_values() {
    // Once every correct processor has discovered a fault, its messages
    // are replaced by defaults: after global detection the adversary's
    // payload content for that sender is irrelevant. We check by running
    // two executions that differ only in what a revealed fault sends
    // *after* everyone has discovered it — outcomes must coincide.
    let (n, t, b) = (13, 3, 2);
    let run_with_late_noise = |late_value: u16| {
        let config = RunConfig::new(n, t)
            .with_source_value(Value(1))
            .with_trace();
        struct LateNoise {
            late_value: u16,
        }
        impl shifting_gears::sim::Adversary for LateNoise {
            fn name(&self) -> String {
                "late-noise".to_string()
            }
            fn corrupt(
                &mut self,
                n: usize,
                _t: usize,
                _source: ProcessId,
            ) -> shifting_gears::sim::ProcessSet {
                shifting_gears::sim::ProcessSet::from_members(n, [ProcessId(1)])
            }
            fn payload(
                &mut self,
                _sender: ProcessId,
                recipient: ProcessId,
                view: &shifting_gears::sim::AdversaryView<'_>,
            ) -> shifting_gears::sim::Payload {
                let len = view.expected_len(_sender).max(1);
                if view.round == 2 {
                    // Blatant equivocation: get globally detected.
                    shifting_gears::sim::Payload::values([Value((recipient.index() % 2) as u16)])
                } else if view.round > 2 {
                    // Post-detection noise that must be masked away.
                    shifting_gears::sim::Payload::Values(vec![Value(self.late_value); len])
                } else {
                    view.shadow_of(_sender)
                        .cloned()
                        .unwrap_or(shifting_gears::sim::Payload::Missing)
                }
            }
        }
        let mut adversary = LateNoise { late_value };
        let outcome = execute(AlgorithmSpec::AlgorithmB { b }, &config, &mut adversary).unwrap();
        outcome.assert_correct();
        outcome
    };
    let quiet = run_with_late_noise(0);
    let loud = run_with_late_noise(1);
    assert_eq!(quiet.decisions, loud.decisions);
    // P1 must actually have been discovered by every correct processor.
    let discoverers = quiet
        .trace
        .entries()
        .iter()
        .filter(|e| {
            matches!(&e.event, TraceEvent::Discovered { suspect, .. } if *suspect == ProcessId(1))
        })
        .count();
    assert_eq!(discoverers, n - 1, "P1 not globally detected");
}
