//! Integration gauntlet: every algorithm × every adversary strategy ×
//! source-correct/faulty × both source values must reach Byzantine
//! agreement with validity, within its round schedule.

use shifting_gears::adversary::{quick_suite, standard_suite};
use shifting_gears::core::{execute, AlgorithmSpec};
use shifting_gears::sim::{RunConfig, Value};

/// Runs `spec` against the full standard suite at maximum resilience.
fn gauntlet(spec: AlgorithmSpec, n: usize, t: usize, quick: bool) {
    let suite = if quick {
        quick_suite(0xC0FFEE)
    } else {
        standard_suite(0xC0FFEE)
    };
    for mut adversary in suite {
        for source_value in [Value(0), Value(1)] {
            let config = RunConfig::new(n, t).with_source_value(source_value);
            let outcome = execute(spec, &config, adversary.as_mut())
                .unwrap_or_else(|e| panic!("{} invalid: {e}", spec.name()));
            assert!(
                outcome.faulty.len() <= t,
                "{} corrupted more than t",
                adversary.name()
            );
            outcome.assert_correct();
            assert_eq!(
                outcome.scheduled_rounds,
                spec.rounds(n, t),
                "{} schedule drifted under {}",
                spec.name(),
                outcome.adversary
            );
            assert!(
                outcome.rounds_used <= outcome.scheduled_rounds,
                "{} overran its schedule under {}",
                spec.name(),
                outcome.adversary
            );
            assert_eq!(
                outcome.early_stopped,
                outcome.rounds_used < outcome.scheduled_rounds,
                "{} mis-reported early_stopped under {}",
                spec.name(),
                outcome.adversary
            );
        }
    }
}

#[test]
fn exponential_n4_t1() {
    gauntlet(AlgorithmSpec::Exponential, 4, 1, false);
}

#[test]
fn exponential_n7_t2() {
    gauntlet(AlgorithmSpec::Exponential, 7, 2, false);
}

#[test]
fn exponential_n10_t3() {
    gauntlet(AlgorithmSpec::Exponential, 10, 3, true);
}

#[test]
fn plain_exponential_n7_t2() {
    gauntlet(AlgorithmSpec::PlainExponential, 7, 2, false);
}

#[test]
fn exponential_prime_n7_t2() {
    gauntlet(AlgorithmSpec::ExponentialPrime, 7, 2, false);
}

#[test]
fn algorithm_a_n13_t4_b3() {
    gauntlet(AlgorithmSpec::AlgorithmA { b: 3 }, 13, 4, false);
}

#[test]
fn algorithm_a_n16_t5_b3() {
    gauntlet(AlgorithmSpec::AlgorithmA { b: 3 }, 16, 5, true);
}

#[test]
fn algorithm_a_n16_t5_b4() {
    gauntlet(AlgorithmSpec::AlgorithmA { b: 4 }, 16, 5, true);
}

#[test]
fn algorithm_b_n13_t3_b2() {
    gauntlet(AlgorithmSpec::AlgorithmB { b: 2 }, 13, 3, false);
}

#[test]
fn algorithm_b_n21_t5_b3() {
    gauntlet(AlgorithmSpec::AlgorithmB { b: 3 }, 21, 5, true);
}

#[test]
fn algorithm_c_n18_t3() {
    gauntlet(AlgorithmSpec::AlgorithmC, 18, 3, false);
}

#[test]
fn algorithm_c_n32_t4() {
    gauntlet(AlgorithmSpec::AlgorithmC, 32, 4, true);
}

#[test]
fn hybrid_n10_t3_b3() {
    gauntlet(AlgorithmSpec::Hybrid { b: 3 }, 10, 3, false);
}

#[test]
fn hybrid_n13_t4_b3() {
    gauntlet(AlgorithmSpec::Hybrid { b: 3 }, 13, 4, false);
}

#[test]
fn hybrid_n16_t5_b3() {
    gauntlet(AlgorithmSpec::Hybrid { b: 3 }, 16, 5, true);
}

#[test]
fn hybrid_n16_t5_b4() {
    gauntlet(AlgorithmSpec::Hybrid { b: 4 }, 16, 5, true);
}

#[test]
fn phase_king_n9_t2() {
    gauntlet(AlgorithmSpec::PhaseKing, 9, 2, false);
}

#[test]
fn phase_queen_n9_t2() {
    gauntlet(AlgorithmSpec::PhaseQueen, 9, 2, false);
}

#[test]
fn phase_queen_n13_t3() {
    gauntlet(AlgorithmSpec::PhaseQueen, 13, 3, true);
}

#[test]
fn dolev_strong_n5_t3() {
    gauntlet(AlgorithmSpec::DolevStrong, 5, 3, false);
}

#[test]
fn dynamic_king_n10_t3() {
    gauntlet(AlgorithmSpec::DynamicKing { b: 3 }, 10, 3, false);
}

#[test]
fn dynamic_king_n16_t5() {
    gauntlet(AlgorithmSpec::DynamicKing { b: 3 }, 16, 5, true);
}
