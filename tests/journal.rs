//! The result journal is *unobservable* in sweep output: a warm
//! journal-backed run must be bit-identical to a cold one, across every
//! engine mode and both execution paths (local `run_with_journal`, the
//! `sg-serve/1` daemon), and any damage to the store must degrade to
//! recomputation — "absent, never wrong" — with a structured warning,
//! never a panic or a wrong cell.

use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

use proptest::prelude::*;
use shifting_gears::adversary::FaultSelection;
use shifting_gears::analysis::{
    engine_epoch, AdversaryFamily, SweepConfig, SweepPlan, SweepReport,
};
use shifting_gears::core::AlgorithmSpec;
use shifting_gears::journal::Journal;
use shifting_gears::sim::{
    set_batch_runs, set_early_stopping, set_instance_pooling, set_packed_broadcast,
};

/// Serializes the tests in this file: several drive the process-global
/// engine toggles, which the journal's epoch (and the sweep engine)
/// read mid-run.
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sg-journal-it-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small mixed grid: one cell with a lock-step batch kernel, one
/// scalar-fallback cell, two adversary families — 4 cells.
fn grid(seeds: u64) -> SweepPlan {
    SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 10, 3),
            SweepConfig::traced(AlgorithmSpec::DynamicKing { b: 3 }, 10, 2),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source().limit(2)),
            AdversaryFamily::crash(FaultSelection::without_source().limit(2), 2),
        ],
        seeds,
    )
}

/// Restores the engine defaults (all fast paths on) when dropped, so a
/// failing assertion cannot leak a disabled toggle into later tests.
struct ToggleGuard;

impl Drop for ToggleGuard {
    fn drop(&mut self) {
        set_early_stopping(true);
        set_instance_pooling(true);
        set_batch_runs(true);
        set_packed_broadcast(true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (a) Warm vs cold bit-identity across the engine-mode matrix:
    /// pooled/fresh instances × batch/scalar × 1/8 workers. The first
    /// journal pass computes everything (and must already match the
    /// journal-free report); the second pass answers every cell from
    /// the store and must still match, byte for byte.
    #[test]
    fn warm_and_cold_reports_are_bit_identical(
        pooled in any::<bool>(),
        batch in any::<bool>(),
        eight_jobs in any::<bool>(),
    ) {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = ToggleGuard;
        set_instance_pooling(pooled);
        set_batch_runs(batch);
        let jobs = if eight_jobs { 8 } else { 1 };
        let plan = grid(10);
        let cold = plan.run_with_jobs(jobs);

        let dir = tmpdir("warm-cold");
        let mut journal = Journal::open(&dir).unwrap();
        let first = plan.run_with_journal(&mut journal, jobs);
        prop_assert_eq!(first.hits, 0);
        prop_assert_eq!(first.computed, plan.cell_count());
        prop_assert_eq!(&first.report, &cold);

        let second = plan.run_with_journal(&mut journal, jobs);
        prop_assert_eq!(second.hits, plan.cell_count());
        prop_assert_eq!(second.computed, 0);
        prop_assert!(second.warnings.is_empty(), "{:?}", second.warnings);
        prop_assert_eq!(&second.report, &cold);
        prop_assert_eq!(second.report.fingerprint(), cold.fingerprint());
        drop(journal);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// (c) Damaged storage degrades to a miss, never to a wrong answer:
    /// whatever line of the segment is truncated, bit-flipped, or
    /// replaced with garbage, the next journal-backed run still produces
    /// the cold report — recomputing the damaged cells — and surfaces a
    /// structured warning instead of panicking.
    #[test]
    fn damaged_segments_demote_to_recomputation(
        line_sel in 0usize..4,
        damage in 0usize..3,
    ) {
        let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = grid(6);
        let cold = plan.run_with_jobs(1);
        let dir = tmpdir("damage");
        {
            let mut journal = Journal::open(&dir).unwrap();
            plan.run_with_journal(&mut journal, 1);
        }
        let segment = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "ndjson"))
            .unwrap();
        let text = fs::read_to_string(&segment).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let target = line_sel % lines.len();
        match damage {
            // Crash mid-append: the line stops partway through.
            0 => {
                let half = lines[target].len() / 2;
                lines[target].truncate(half);
            }
            // One flipped bit inside the payload.
            1 => {
                let mut bytes = lines[target].clone().into_bytes();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
                lines[target] = String::from_utf8_lossy(&bytes).into_owned();
            }
            // The line is not even JSON.
            _ => lines[target] = "not json at all".to_string(),
        }
        fs::write(&segment, lines.join("\n") + "\n").unwrap();

        let mut journal = Journal::open(&dir).unwrap();
        let warm = plan.run_with_journal(&mut journal, 1);
        prop_assert_eq!(&warm.report, &cold, "damage must never change bytes");
        prop_assert!(
            warm.computed >= 1,
            "at least the damaged cell is recomputed"
        );
        prop_assert_eq!(warm.hits + warm.computed, plan.cell_count());
        // The damage surfaced somewhere structured: either the loader
        // flagged the broken line, or the lookup flagged the payload.
        prop_assert!(
            !journal.warnings().is_empty() || !warm.warnings.is_empty(),
            "damage of kind {damage} to line {target} was silent"
        );
        drop(journal);
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// (b) Every engine toggle moves the live epoch, and a moved epoch
/// yields *zero* hits: entries written under the fast-path default are
/// invisible to a differently-configured engine, so a mode flip can
/// never replay wrong-mode bytes.
#[test]
fn flipping_any_engine_toggle_yields_zero_hits() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = ToggleGuard;
    let base = engine_epoch();
    type Setter = fn(bool);
    let setters: [(&str, Setter); 4] = [
        ("early-stop", set_early_stopping),
        ("instance-pool", set_instance_pooling),
        ("batch", set_batch_runs),
        ("packed-broadcast", set_packed_broadcast),
    ];
    for (name, set) in setters {
        set(false);
        assert_ne!(engine_epoch(), base, "{name} must move the epoch");
        set(true);
    }
    assert_eq!(engine_epoch(), base, "restored toggles restore the epoch");

    // And end to end: a journal populated in the default mode answers
    // nothing once a toggle flips — the cells are recomputed (in the
    // new mode) rather than replayed from the wrong epoch.
    let plan = grid(6);
    let dir = tmpdir("epoch-miss");
    let mut journal = Journal::open(&dir).unwrap();
    plan.run_with_journal(&mut journal, 1);
    set_instance_pooling(false);
    let flipped = plan.run_with_journal(&mut journal, 1);
    assert_eq!(flipped.hits, 0, "moved epoch must miss every cell");
    assert_eq!(flipped.computed, plan.cell_count());
    set_instance_pooling(true);
    let restored = plan.run_with_journal(&mut journal, 1);
    assert_eq!(
        restored.hits,
        plan.cell_count(),
        "both epochs now coexist in the store"
    );
    drop(journal);
    fs::remove_dir_all(&dir).unwrap();
}

/// (a), server path: a journal-backed daemon serves a repeat submit
/// entirely from cache and an overlapping, widened submit computes
/// exactly the delta — with every streamed report bit-identical to the
/// local batch path.
#[test]
fn daemon_serves_overlap_from_cache_and_computes_the_delta() {
    use shifting_gears::serve::{serve, Bind, Client, ServeOptions};

    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmpdir("daemon");
    let options = ServeOptions {
        workers: 2,
        journal: Some(dir.clone()),
        ..ServeOptions::default()
    };
    let handle = serve(&Bind::Tcp("127.0.0.1:0".to_string()), options).expect("bind");
    let addr = handle.tcp_addr().unwrap().to_string();
    let mut client = Client::connect(&addr, std::time::Duration::from_secs(10)).expect("connect");

    let narrow = grid(8);
    let cold_narrow = narrow.run_with_jobs(2);
    let job = client.submit(&narrow).expect("submit");
    let first = client.collect(job, |_, _| {}).expect("stream");
    assert_eq!(first.cached_cells, 0, "first submit is all cold");
    assert_eq!(first.report, cold_narrow);

    // Exact repeat: every cell comes from the journal, none recompute.
    let job = client.submit(&narrow).expect("resubmit");
    let warm = client.collect(job, |_, _| {}).expect("stream");
    assert_eq!(warm.cached_cells, narrow.cell_count(), "fully warm");
    assert_eq!(warm.report, cold_narrow);
    assert_eq!(warm.fingerprint, first.fingerprint);

    // Widened grid sharing the narrow grid's cells: the overlap is
    // cached, the recomputed count is exactly the delta.
    let wide = SweepPlan::new(
        narrow.configs.clone(),
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source().limit(2)),
            AdversaryFamily::crash(FaultSelection::without_source().limit(2), 2),
            AdversaryFamily::silent(FaultSelection::without_source().limit(2)),
        ],
        8,
    );
    let cold_wide = wide.run_with_jobs(2);
    let job = client.submit(&wide).expect("submit widened");
    let widened = client.collect(job, |_, _| {}).expect("stream");
    assert_eq!(
        widened.cached_cells,
        narrow.cell_count(),
        "the overlap is served from cache"
    );
    assert_eq!(widened.report, cold_wide, "merged stream matches cold run");

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).unwrap();
}

/// The journal file format survives a process boundary: a store written
/// by one journal handle answers a fresh handle (fresh process state in
/// miniature) with the same bytes, and `SweepReport` equality extends to
/// the pinned fingerprint.
#[test]
fn journal_round_trips_across_reopen() {
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = grid(8);
    let cold: SweepReport = plan.run_with_jobs(1);
    let dir = tmpdir("reopen");
    {
        let mut journal = Journal::open(&dir).unwrap();
        plan.run_with_journal(&mut journal, 1);
    }
    let mut journal = Journal::open(&dir).unwrap();
    let warm = plan.run_with_journal(&mut journal, 1);
    assert_eq!(warm.hits, plan.cell_count());
    assert_eq!(warm.report, cold);
    assert_eq!(warm.report.fingerprint(), cold.fingerprint());
    drop(journal);
    fs::remove_dir_all(&dir).unwrap();
}
