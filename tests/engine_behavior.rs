//! Engine-level behaviour: rushing visibility, shadow instances, trace
//! plumbing, and outcome semantics.

use shifting_gears::core::AlgorithmSpec;
use shifting_gears::sim::{
    run, Adversary, AdversaryView, Payload, ProcessId, ProcessSet, RunConfig, TraceEvent, Value,
};

/// Asserts mid-run that the adversary really sees the current round's
/// honest broadcasts (rushing) and its own shadows.
struct ViewInspector {
    saw_source_broadcast: bool,
    shadow_lens: Vec<(usize, usize)>,
}

impl Adversary for ViewInspector {
    fn name(&self) -> String {
        "view-inspector".to_string()
    }

    fn corrupt(&mut self, n: usize, _t: usize, _source: ProcessId) -> ProcessSet {
        ProcessSet::from_members(n, [ProcessId(1)])
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        if view.round == 1 && recipient == ProcessId(2) {
            // Rushing: the source's round-1 broadcast is visible before
            // we choose our payload.
            let honest = view.honest_of(view.source).expect("source broadcast");
            assert_eq!(honest.value_at(0), Some(view.source_value));
            self.saw_source_broadcast = true;
        }
        if recipient == ProcessId(2) {
            self.shadow_lens
                .push((view.round, view.expected_len(sender)));
        }
        view.shadow_of(sender).cloned().unwrap_or(Payload::Missing)
    }
}

#[test]
fn adversary_sees_rushed_broadcasts_and_shadows() {
    let config = RunConfig::new(7, 2).with_source_value(Value(1));
    let mut adversary = ViewInspector {
        saw_source_broadcast: false,
        shadow_lens: Vec::new(),
    };
    let outcome = run(
        &config,
        &mut adversary,
        AlgorithmSpec::Exponential.factory(&config),
    );
    outcome.assert_correct();
    assert!(adversary.saw_source_broadcast);
    // Exponential on n = 7: honest gather payloads carry 1 value in
    // round 2 and 6 in round 3; the shadow lengths must match.
    assert_eq!(adversary.shadow_lens, vec![(1, 0), (2, 1), (3, 6)]);
}

#[test]
fn trace_events_only_from_correct_processors() {
    let config = RunConfig::new(7, 2)
        .with_source_value(Value(1))
        .with_trace();
    let mut adversary = shifting_gears::adversary::TwoFaced::new(
        shifting_gears::adversary::FaultSelection::without_source(),
    );
    let outcome = run(
        &config,
        &mut adversary,
        AlgorithmSpec::Exponential.factory(&config),
    );
    assert!(!outcome.trace.entries().is_empty());
    for e in outcome.trace.entries() {
        assert!(
            !outcome.faulty.contains(e.who),
            "trace entry from faulty {}",
            e.who
        );
    }
    // Every correct processor decided, and says so in the trace.
    for i in 0..7 {
        let p = ProcessId(i);
        if !outcome.faulty.contains(p) {
            assert!(outcome
                .trace
                .by(p)
                .any(|e| matches!(e.event, TraceEvent::Decided { .. })));
        }
    }
}

#[test]
fn trace_empty_when_disabled() {
    let config = RunConfig::new(4, 1).with_source_value(Value(1));
    let outcome = run(
        &config,
        &mut shifting_gears::sim::NoFaults,
        AlgorithmSpec::Exponential.factory(&config),
    );
    assert!(outcome.trace.entries().is_empty());
}

#[test]
fn validity_is_vacuous_with_faulty_source() {
    let config = RunConfig::new(7, 2).with_source_value(Value(1));
    let mut adversary = shifting_gears::adversary::Silent::new(
        shifting_gears::adversary::FaultSelection::with_source(),
    );
    let outcome = run(
        &config,
        &mut adversary,
        AlgorithmSpec::Exponential.factory(&config),
    );
    assert!(outcome.faulty.contains(ProcessId(0)));
    assert_eq!(outcome.validity(), None);
    assert!(outcome.agreement());
    // A silent source yields the default decision everywhere.
    assert_eq!(outcome.decision(), Some(Value::DEFAULT));
}

#[test]
fn peak_tree_nodes_reflects_deepest_gather() {
    let config = RunConfig::new(7, 2).with_source_value(Value(1));
    let outcome = run(
        &config,
        &mut shifting_gears::sim::NoFaults,
        AlgorithmSpec::Exponential.factory(&config),
    );
    // Levels 0..2 of the no-rep tree: 1 + 6 + 30 nodes, plus the root of
    // the rep twin (1).
    assert_eq!(outcome.metrics.peak_tree_nodes, 1 + 6 + 30 + 1);
}

#[test]
fn per_round_stats_have_one_entry_per_round() {
    let config = RunConfig::new(18, 3).with_source_value(Value(1));
    let outcome = run(
        &config,
        &mut shifting_gears::sim::NoFaults,
        AlgorithmSpec::AlgorithmC.factory(&config),
    );
    assert_eq!(outcome.metrics.per_round.len(), outcome.rounds_used);
    for (i, r) in outcome.metrics.per_round.iter().enumerate() {
        assert_eq!(r.round, i + 1);
    }
    // Round 1: only the source speaks (17 messages of 1 value).
    assert_eq!(outcome.metrics.per_round[0].honest_messages, 17);
    // Round 2 of C: everyone echoes the root (18 senders × 17 peers).
    assert_eq!(outcome.metrics.per_round[1].honest_messages, 18 * 17);
}
