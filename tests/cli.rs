//! End-to-end tests of the `sg` command-line driver.

use std::process::Command;

fn sg(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sg"))
        .args(args)
        .output()
        .expect("spawn sg");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn run_hybrid_reports_agreement() {
    let (ok, stdout, _) = sg(&[
        "run",
        "--alg",
        "hybrid",
        "--b",
        "3",
        "--n",
        "13",
        "--adversary",
        "two-faced",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("agreement : true"));
    assert!(stdout.contains("decision  : Some(Value(1))"));
}

#[test]
fn run_with_trace_shows_discoveries() {
    let (ok, stdout, _) = sg(&[
        "run",
        "--alg",
        "algorithm-a",
        "--b",
        "3",
        "--n",
        "13",
        "--adversary",
        "chain-revealer",
        "--trace",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("discovered"));
    assert!(stdout.contains("shifted via resolve'"));
}

#[test]
fn plan_prints_figure_2_structure() {
    let (ok, stdout, _) = sg(&["plan", "--alg", "algorithm-b", "--b", "3", "--t", "5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("tree(s) := resolve(s)"));
    assert!(stdout.contains("round  1"));
}

#[test]
fn bounds_lists_resiliences() {
    let (ok, stdout, _) = sg(&["bounds", "--n", "31"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("t <= 10"));
    assert!(stdout.contains("t <= 7"));
    assert!(stdout.contains("t <= 4"));
}

#[test]
fn list_names_all_algorithms() {
    let (ok, stdout, _) = sg(&["list"]);
    assert!(ok, "{stdout}");
    for name in [
        "hybrid",
        "algorithm-c",
        "phase-queen",
        "dynamic-king",
        "dolev-strong",
        "two-faced",
    ] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn invalid_algorithm_fails_with_hint() {
    let (ok, _, stderr) = sg(&["run", "--alg", "nonsense", "--n", "7"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));
}

#[test]
fn over_resilience_run_is_rejected() {
    let (ok, _, stderr) = sg(&["run", "--alg", "exponential", "--n", "4", "--t", "2"]);
    assert!(!ok);
    assert!(stderr.contains("cannot run"));
}

#[test]
fn compose_validates_and_runs() {
    let (ok, stdout, _) = sg(&["compose", "--n", "16", "--spec", "a:3x2,b:3x1,c:4", "--run"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("verdict     : safe"));
    assert!(stdout.contains("agreement   : true"));
}

#[test]
fn compose_rejects_unsafe_shift_with_reason() {
    let (ok, stdout, _) = sg(&["compose", "--n", "16", "--spec", "b:3x3,c:4"]);
    assert!(!ok);
    assert!(stdout.contains("REJECTED"), "{stdout}");
    assert!(stdout.contains("Corollary 1"), "{stdout}");
}

#[test]
fn compose_king_tail_spec_parses() {
    let (ok, stdout, _) = sg(&["compose", "--n", "10", "--spec", "a:3,king"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("King"));
}

#[test]
fn compose_bad_segment_syntax_errors() {
    let (ok, _, stderr) = sg(&["compose", "--n", "16", "--spec", "q:3"]);
    assert!(!ok);
    assert!(stderr.contains("unknown segment kind"), "{stderr}");
}

#[test]
fn gauntlet_reports_per_adversary_lines() {
    let (ok, stdout, _) = sg(&["gauntlet", "--alg", "optimal-king", "--n", "7"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("all executions reached agreement"));
    assert!(stdout.contains("two-faced"));
}

#[test]
fn stability_prints_lock_in_sweep() {
    let (ok, stdout, _) = sg(&["stability", "--alg", "algorithm-c", "--n", "18"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("head-room"));
    // One row per fault count 0..=t plus the header.
    let rows = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with(char::is_numeric))
        .count();
    assert!(rows >= 3, "{stdout}");
}

#[test]
fn run_dynamic_king_from_cli() {
    let (ok, stdout, _) = sg(&[
        "run",
        "--alg",
        "dynamic-king",
        "--b",
        "3",
        "--n",
        "16",
        "--adversary",
        "crash",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("agreement : true"));
    assert!(stdout.contains("(early stop)"), "{stdout}");
}

#[test]
fn run_king_shift_from_cli() {
    let (ok, stdout, _) = sg(&[
        "run",
        "--alg",
        "king-shift",
        "--b",
        "3",
        "--n",
        "10",
        "--adversary",
        "double-talk",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("agreement : true"));
}

#[test]
fn record_then_replay_round_trips_through_the_cli() {
    let dir = std::env::temp_dir().join(format!("sg-cli-record-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("scenario.json");
    let path = path.to_str().expect("utf-8 path");

    let (ok, stdout, stderr) = sg(&[
        "record",
        "--alg",
        "optimal-king",
        "--n",
        "7",
        "--adversary",
        "equivocate",
        "--seed",
        "3",
        "--out",
        path,
    ]);
    assert!(ok, "record failed: {stdout}{stderr}");
    assert!(stdout.contains("recorded equivocate"), "{stdout}");

    let (ok, stdout, stderr) = sg(&["replay", path]);
    assert!(ok, "replay failed: {stdout}{stderr}");
    assert!(
        stdout.contains("1 scenario(s) replayed, 0 failed"),
        "{stdout}"
    );

    // A damaged artifact must fail the replay gate, not pass silently.
    let text = std::fs::read_to_string(path).expect("readable scenario");
    std::fs::write(
        path,
        text.replace("\"agreement\":true", "\"agreement\":false"),
    )
    .expect("write damaged scenario");
    let (ok, _, stderr) = sg(&["replay", path]);
    assert!(!ok, "damaged scenario must fail");
    assert!(stderr.contains("verdict drift"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Running `sg` with no subcommand prints the usage text and exits
/// non-zero, and that text documents *every* public flag the binary
/// parses — the help audit. A flag added to a subcommand without a
/// usage() mention fails this list, which is kept in sync by hand with
/// the `flags.get`/`parse_usize`/toggle lookups in `src/bin/sg.rs`.
#[test]
fn usage_documents_every_public_flag() {
    let (ok, _, stderr) = sg(&[]);
    assert!(!ok, "bare `sg` must exit non-zero");
    assert!(stderr.contains("usage:"), "{stderr}");
    for flag in [
        // run / plan / compose / gauntlet / stability
        "--alg",
        "--n",
        "--t",
        "--b",
        "--adversary",
        "--value",
        "--seed",
        "--source-faulty",
        "--trace",
        "--spec",
        "--run",
        // sweep grids (also accepted by submit)
        "--seeds",
        "--f",
        "--base-seed",
        "--split",
        "--from",
        "--to",
        "--period",
        "--phase",
        "--start",
        "--schedule",
        "--trace-file",
        "--expect-fingerprint",
        // record / replay
        "--out",
        "--quiet",
        // serve / submit / ping / hammer
        "--port",
        "--addr",
        "--socket",
        "--workers",
        "--quantum",
        "--max-jobs",
        "--max-queued-runs",
        "--conn-jobs",
        "--write-queue",
        "--send-buffer",
        "--timeout",
        "--deadline-ms",
        "--retry-attempts",
        "--shutdown",
        "--timeout-ms",
        "--attempts",
        "--connections",
        "--jobs-per-conn",
        "--chaos",
        // global engine toggles
        "--jobs",
        "--no-early-stop",
        "--no-instance-pool",
        "--no-batch",
    ] {
        assert!(stderr.contains(flag), "usage text is missing {flag}");
    }
}

/// The `--no-batch` escape hatch must reproduce the batched sweep's
/// fingerprint bit for bit — the CLI surface of the contract
/// `tests/batch_identity.rs` pins at the library layer.
#[test]
fn sweep_no_batch_reproduces_the_fingerprint() {
    let grid = [
        "sweep",
        "--alg",
        "optimal-king",
        "--n",
        "7",
        "--seeds",
        "70",
        "--adversary",
        "random-liar",
        "--jobs",
        "1",
    ];
    let (ok, batched, stderr) = sg(&grid);
    assert!(ok, "{batched}{stderr}");
    let mut no_batch = grid.to_vec();
    no_batch.push("--no-batch");
    let (ok, scalar, stderr) = sg(&no_batch);
    assert!(ok, "{scalar}{stderr}");
    let fingerprint_of = |out: &str| {
        out.lines()
            .find(|l| l.contains("report fingerprint:"))
            .map(str::to_string)
            .expect("fingerprint line")
    };
    assert_eq!(fingerprint_of(&batched), fingerprint_of(&scalar));
}

#[test]
fn sweep_accepts_the_widened_adversary_vocabulary() {
    for adversary in ["partition", "omission", "equivocate", "adaptive"] {
        let (ok, stdout, stderr) = sg(&[
            "sweep",
            "--alg",
            "optimal-king",
            "--n",
            "7",
            "--seeds",
            "5",
            "--adversary",
            adversary,
        ]);
        assert!(ok, "sweep --adversary {adversary} failed: {stdout}{stderr}");
        assert!(stdout.contains("report fingerprint:"), "{stdout}");
    }
}
