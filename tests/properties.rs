//! Property-based tests: agreement and validity must hold under *fully
//! random* Byzantine behaviour (including malformed message lengths), and
//! the schedule/conversion algebra must match its closed forms, for
//! randomly drawn parameters.

mod common;

use common::TestNet;
use proptest::prelude::*;
use shifting_gears::core::plan::{algorithm_a_plan, algorithm_b_plan};
use shifting_gears::core::schedule::{
    algorithm_a_rounds_bound, algorithm_a_rounds_exact, algorithm_b_rounds_bound,
    algorithm_b_rounds_exact,
};
use shifting_gears::core::{AlgorithmSpec, HybridSchedule};
use shifting_gears::eigtree::{convert, strict_majority, Conversion, IgTree, Res};
use shifting_gears::sim::{Payload, ProcessId, ProcessSet, Value};

/// A tiny deterministic PRNG for adversary payload generation inside
/// proptest closures (proptest supplies the seed).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `spec` with a fully random adversary: random values, random
/// *lengths* (sometimes truncated, sometimes padded, sometimes missing).
fn random_run(
    spec: AlgorithmSpec,
    n: usize,
    t: usize,
    faulty_ids: &[usize],
    source_value: Value,
    seed: u64,
) {
    let faulty = ProcessSet::from_members(n, faulty_ids.iter().map(|&i| ProcessId(i)));
    let mut net = TestNet::new(spec, n, t, source_value, faulty);
    let mut state = seed;
    net.run_all(
        &mut |_round, _sender, _recipient, shadow: Option<&Payload>| {
            let base_len = shadow.map_or(1, Payload::num_values);
            match splitmix(&mut state) % 5 {
                0 => Payload::Missing,
                1 => {
                    // Wrong length: truncate or pad.
                    let len = (splitmix(&mut state) as usize) % (base_len + 3);
                    Payload::Values(
                        (0..len)
                            .map(|_| Value((splitmix(&mut state) % 4) as u16)) // may be out of domain
                            .collect(),
                    )
                }
                _ => Payload::Values(
                    (0..base_len)
                        .map(|_| Value((splitmix(&mut state) % 2) as u16))
                        .collect(),
                ),
            }
        },
    );
    net.assert_correct(source_value);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Exponential Algorithm never violates agreement/validity under
    /// arbitrary faulty behaviour (n = 7, t = 2, any 2 faults).
    #[test]
    fn exponential_agreement_under_chaos(
        seed in any::<u64>(),
        f1 in 0usize..7,
        f2 in 0usize..7,
        source_value in 0u16..2,
    ) {
        let faults: Vec<usize> = if f1 == f2 { vec![f1] } else { vec![f1, f2] };
        random_run(AlgorithmSpec::Exponential, 7, 2, &faults, Value(source_value), seed);
    }

    /// Algorithm A (b = 3) under chaos at n = 10, t = 3.
    #[test]
    fn algorithm_a_agreement_under_chaos(
        seed in any::<u64>(),
        faults in proptest::collection::btree_set(0usize..10, 0..=3),
        source_value in 0u16..2,
    ) {
        let faults: Vec<usize> = faults.into_iter().collect();
        random_run(AlgorithmSpec::AlgorithmA { b: 3 }, 10, 3, &faults, Value(source_value), seed);
    }

    /// Algorithm B (b = 2) under chaos at n = 9, t = 2.
    #[test]
    fn algorithm_b_agreement_under_chaos(
        seed in any::<u64>(),
        faults in proptest::collection::btree_set(0usize..9, 0..=2),
        source_value in 0u16..2,
    ) {
        let faults: Vec<usize> = faults.into_iter().collect();
        random_run(AlgorithmSpec::AlgorithmB { b: 2 }, 9, 2, &faults, Value(source_value), seed);
    }

    /// Algorithm C under chaos at n = 18, t = 3.
    #[test]
    fn algorithm_c_agreement_under_chaos(
        seed in any::<u64>(),
        faults in proptest::collection::btree_set(0usize..18, 0..=3),
        source_value in 0u16..2,
    ) {
        let faults: Vec<usize> = faults.into_iter().collect();
        random_run(AlgorithmSpec::AlgorithmC, 18, 3, &faults, Value(source_value), seed);
    }

    /// The hybrid under chaos at n = 10, t = 3 (its design resilience).
    #[test]
    fn hybrid_agreement_under_chaos(
        seed in any::<u64>(),
        faults in proptest::collection::btree_set(0usize..10, 0..=3),
        source_value in 0u16..2,
    ) {
        let faults: Vec<usize> = faults.into_iter().collect();
        random_run(AlgorithmSpec::Hybrid { b: 3 }, 10, 3, &faults, Value(source_value), seed);
    }

    /// Plan lengths always equal the closed-form exact round counts, and
    /// the exact counts never exceed the theorem bounds.
    #[test]
    fn schedule_algebra(t in 3usize..40, b in 2usize..12) {
        prop_assume!(b < t);
        prop_assert_eq!(algorithm_b_plan(t, b).len(), algorithm_b_rounds_exact(t, b));
        prop_assert!(algorithm_b_rounds_exact(t, b) <= algorithm_b_rounds_bound(t, b));
        if b >= 3 {
            prop_assert_eq!(algorithm_a_plan(t, b).len(), algorithm_a_rounds_exact(t, b));
            prop_assert!(algorithm_a_rounds_exact(t, b) <= algorithm_a_rounds_bound(t, b));
        }
    }

    /// Hybrid schedules are internally consistent for any valid (n, b),
    /// and the Main Theorem's closed form equals the phase sum.
    #[test]
    fn hybrid_schedule_algebra(n in 10usize..120, b_offset in 0usize..8) {
        let t = shifting_gears::core::t_a(n);
        prop_assume!(t >= 3);
        let b = 3 + b_offset.min(t - 3);
        let s = HybridSchedule::compute(n, b);
        prop_assert_eq!(s.total_rounds(), s.main_theorem_rounds());
        prop_assert!(s.t_ab >= 1 && s.t_ab <= s.t_ac && s.t_ac <= t);
        prop_assert!(s.n - 2 * s.t + s.t_ab > (s.n - 1) / 2);
        let d = s.t - s.t_ac;
        prop_assert!(2 * d * d < s.n - 2 * s.t);
    }

    /// `strict_majority` agrees with the naive count definition.
    #[test]
    fn strict_majority_matches_naive(vals in proptest::collection::vec(0u16..4, 0..24)) {
        let got = strict_majority(&vals);
        let naive = (0u16..4).find(|v| {
            2 * vals.iter().filter(|x| *x == v).count() > vals.len()
        });
        prop_assert_eq!(got, naive);
    }

    /// Unanimous trees resolve to the unanimous value under both
    /// conversion functions, regardless of depth.
    #[test]
    fn unanimous_trees_resolve_to_value(
        depth in 1usize..4,
        v in 0u16..2,
    ) {
        let n = 7;
        let t = 2;
        let mut tree = IgTree::new(n, ProcessId(0));
        tree.set_root(Value(v));
        for _ in 0..depth {
            tree.append_level(|_, _| Value(v));
        }
        prop_assert_eq!(convert(&tree, Conversion::Resolve).root(), Res::Val(Value(v)));
        prop_assert_eq!(
            convert(&tree, Conversion::ResolvePrime { t }).root(),
            Res::Val(Value(v))
        );
    }

    /// Random trees: both conversions always produce either a domain
    /// value or ⊥, and `resolve` never produces ⊥.
    #[test]
    fn conversions_are_total(seed in any::<u64>(), depth in 1usize..4) {
        let n = 6;
        let mut state = seed;
        let mut tree = IgTree::new(n, ProcessId(0));
        tree.set_root(Value((splitmix(&mut state) % 2) as u16));
        for _ in 0..depth {
            tree.append_level(|_, _| Value((splitmix(&mut state) % 2) as u16));
        }
        let r = convert(&tree, Conversion::Resolve);
        for level in 0..r.depth() {
            for res in r.level(level) {
                prop_assert!(matches!(res, Res::Val(_)));
            }
        }
        let rp = convert(&tree, Conversion::ResolvePrime { t: 1 });
        prop_assert!(matches!(rp.root(), Res::Val(_) | Res::Bottom));
    }
}
