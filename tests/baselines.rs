//! Baseline-specific adversarial tests: authenticated Dolev–Strong (with
//! signature-forgery attempts) and Phase King.

use shifting_gears::adversary::{standard_suite, EquivocatingSource, FaultSelection, RandomLiar};
use shifting_gears::core::{execute, AlgorithmSpec};
use shifting_gears::sim::{
    Adversary, AdversaryView, Payload, ProcessId, ProcessSet, RunConfig, Value,
};

#[test]
fn dolev_strong_tolerates_majority_faults() {
    // Authentication buys resilience far beyond n/3: n = 6, t = 4.
    for source_value in [Value(0), Value(1)] {
        let config = RunConfig::new(6, 4).with_source_value(source_value);
        let mut adversary = RandomLiar::new(FaultSelection::with_source(), 3);
        let outcome = execute(AlgorithmSpec::DolevStrong, &config, &mut adversary).unwrap();
        outcome.assert_correct();
    }
}

#[test]
fn dolev_strong_source_equivocation_yields_agreement() {
    let config = RunConfig::new(5, 2).with_source_value(Value(1));
    let mut adversary = EquivocatingSource::new(FaultSelection::with_source().limit(1));
    let outcome = execute(AlgorithmSpec::DolevStrong, &config, &mut adversary).unwrap();
    // Source faulty: validity vacuous, agreement mandatory.
    assert!(outcome.agreement());
}

/// An adversary that actively tries to forge signature chains: it replays
/// honest relays with truncated chains, re-signs stale values, and sends
/// structurally bogus relays. The registry must make all of it useless.
struct Forger;

impl Adversary for Forger {
    fn name(&self) -> String {
        "forger".to_string()
    }

    fn corrupt(&mut self, n: usize, _t: usize, source: ProcessId) -> ProcessSet {
        // Corrupt two non-source processors.
        ProcessSet::from_members(n, (0..n).map(ProcessId).filter(|p| *p != source).take(2))
    }

    fn payload(
        &mut self,
        sender: ProcessId,
        _recipient: ProcessId,
        view: &AdversaryView<'_>,
    ) -> Payload {
        // Try to fabricate support for value 0 without the source's
        // signature: sign it ourselves and relay.
        let forged = view.sign_as(sender, Value(0));
        let mut relays = vec![forged];
        if let Some(other) = view.faulty.iter().find(|f| *f != sender) {
            // A two-signature chain entirely of faulty signers (missing
            // the source) — must be rejected by the accept rule.
            let base = view.sign_as(other, Value(0));
            if let Some(ext) = view.extend_as(sender, &base) {
                relays.push(ext);
            }
        }
        Payload::Signed(relays)
    }
}

#[test]
fn dolev_strong_rejects_forged_chains() {
    let config = RunConfig::new(6, 3).with_source_value(Value(1));
    let mut adversary = Forger;
    let outcome = execute(AlgorithmSpec::DolevStrong, &config, &mut adversary).unwrap();
    outcome.assert_correct();
    assert_eq!(
        outcome.decision(),
        Some(Value(1)),
        "forgery influenced the decision"
    );
}

#[test]
fn phase_king_full_gauntlet_at_various_sizes() {
    for (n, t) in [(5, 1), (9, 2), (13, 3)] {
        for mut adversary in standard_suite(0xBEEF) {
            for source_value in [Value(0), Value(1)] {
                let config = RunConfig::new(n, t).with_source_value(source_value);
                let outcome =
                    execute(AlgorithmSpec::PhaseKing, &config, adversary.as_mut()).unwrap();
                outcome.assert_correct();
                assert_eq!(outcome.scheduled_rounds, 1 + 2 * (t + 1));
                assert!(outcome.rounds_used <= outcome.scheduled_rounds);
            }
        }
    }
}

#[test]
fn phase_queen_full_gauntlet_at_various_sizes() {
    for (n, t) in [(5, 1), (9, 2), (13, 3)] {
        for mut adversary in standard_suite(0xDEAD) {
            for source_value in [Value(0), Value(1)] {
                let config = RunConfig::new(n, t).with_source_value(source_value);
                let outcome =
                    execute(AlgorithmSpec::PhaseQueen, &config, adversary.as_mut()).unwrap();
                outcome.assert_correct();
            }
        }
    }
}

#[test]
fn phase_king_messages_are_constant_size() {
    let config = RunConfig::new(21, 5).with_source_value(Value(1));
    let mut adversary = RandomLiar::new(FaultSelection::without_source(), 8);
    let outcome = execute(AlgorithmSpec::PhaseKing, &config, &mut adversary).unwrap();
    outcome.assert_correct();
    assert_eq!(outcome.metrics.max_message_values(), 1);
}

#[test]
fn dolev_strong_full_gauntlet() {
    for mut adversary in standard_suite(0xF00D) {
        let config = RunConfig::new(7, 3).with_source_value(Value(1));
        let outcome = execute(AlgorithmSpec::DolevStrong, &config, adversary.as_mut()).unwrap();
        outcome.assert_correct();
    }
}
