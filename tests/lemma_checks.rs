//! Executable versions of the paper's lemmas, checked on live executions
//! with full access to every correct processor's tree and fault list.

mod common;

use common::TestNet;
use shifting_gears::core::AlgorithmSpec;
use shifting_gears::eigtree::{convert, Conversion, Converted, Res};
use shifting_gears::sim::{Payload, ProcessId, ProcessSet, Value};

/// Convert every correct processor's tree; return `(processor, converted)`.
fn converted_trees(net: &TestNet, conversion: Conversion) -> Vec<(ProcessId, Converted)> {
    net.correct()
        .into_iter()
        .map(|p| (p, convert(net.protocols[p.index()].tree(), conversion)))
        .collect()
}

/// A node (level, index) is *common* if every correct processor computed
/// the same converted value for it.
fn is_common(converted: &[(ProcessId, Converted)], level: usize, index: usize) -> bool {
    let first = converted[0].1.level(level)[index];
    converted
        .iter()
        .all(|(_, c)| c.level(level)[index] == first)
}

/// Correctness Lemma (§3): for any node `α = βq` with `q` correct, `α` is
/// common and its converted value is `tree_q(β)`.
#[test]
fn correctness_lemma_on_exponential_tree() {
    let n = 7;
    let t = 2;
    let faulty = ProcessSet::from_members(n, [ProcessId(1), ProcessId(2)]);
    let mut net = TestNet::new_inspectable(AlgorithmSpec::Exponential, n, t, Value(1), faulty);
    // Faulty processors two-face: honest story to even recipients,
    // flipped to odd ones.
    net.run_all(
        &mut |_round, _sender, recipient, shadow: Option<&Payload>| match shadow {
            Some(p) if common::is_vector(p) && recipient.index() % 2 == 1 => common::flip_values(p),
            Some(p) => p.clone(),
            None => Payload::Missing,
        },
    );

    let converted = converted_trees(&net, Conversion::Resolve);
    let shape = *net.protocols[3].tree().shape();
    let deepest = net.protocols[3].tree().deepest_level();
    for level in 1..=deepest {
        shape.visit_level(level, &mut |idx, path, _labels| {
            let q = *path.last().expect("non-root");
            if net.faulty.contains(q) {
                return;
            }
            assert!(
                is_common(&converted, level, idx),
                "node {path:?} ending in correct {q} not common"
            );
            // Its converted value equals what q itself stored at the
            // parent path.
            let parent = &path[..path.len() - 1];
            let q_value = net.protocols[q.index()]
                .tree()
                .value_at(parent)
                .expect("parent stored");
            assert_eq!(
                converted[0].1.level(level)[idx],
                Res::Val(q_value),
                "converted value at {path:?} differs from tree_q(parent)"
            );
        });
    }
}

/// Frontier Lemma (§3): with at most `t` faults every root-to-leaf path
/// contains a common node, and therefore `s` is common.
#[test]
fn frontier_lemma_on_exponential_tree() {
    let n = 7;
    let t = 2;
    // Source faulty plus one more: the hardest case for the frontier.
    let faulty = ProcessSet::from_members(n, [ProcessId(0), ProcessId(3)]);
    let mut net = TestNet::new_inspectable(AlgorithmSpec::Exponential, n, t, Value(1), faulty);
    net.run_all(&mut |round, sender, recipient, shadow: Option<&Payload>| {
        // The faulty source equivocates in round 1; P3 flips everything.
        if round == 1 && sender == ProcessId(0) {
            return Payload::values([Value((recipient.index() % 2) as u16)]);
        }
        match shadow {
            Some(p) if common::is_vector(p) => common::flip_values(p),
            _ => Payload::Missing,
        }
    });

    let converted = converted_trees(&net, Conversion::Resolve);
    let shape = *net.protocols[1].tree().shape();
    let deepest = net.protocols[1].tree().deepest_level();

    // Every leaf-path must pass through a common node.
    shape.visit_level(deepest, &mut |leaf_idx, path, _labels| {
        let mut has_common = is_common(&converted, deepest, leaf_idx);
        // Walk ancestors.
        let mut idx = leaf_idx;
        for level in (0..deepest).rev() {
            idx = shape.parent(level + 1, idx);
            has_common |= is_common(&converted, level, idx);
        }
        assert!(has_common, "path {path:?} has no common node");
    });

    // And the root is common (the lemma's conclusion).
    assert!(is_common(&converted, 0, 0), "s not common");
}

/// Persistence Lemma (§3/§4.1): if all correct processors share a
/// preferred value, that value survives every subsequent block and
/// becomes the decision — even with a faulty source.
#[test]
fn persistence_lemma_across_shifts() {
    let n = 13;
    let t = 3;
    // Faulty source *sends the same value 1 to everyone in round 1* (so
    // all correct processors prefer 1), then the faults lie at random.
    let faulty = ProcessSet::from_members(n, [ProcessId(0), ProcessId(4), ProcessId(5)]);
    let mut net = TestNet::new(AlgorithmSpec::AlgorithmB { b: 2 }, n, t, Value(1), faulty);
    let mut flip = 0u64;
    net.run_all(&mut |round, sender, _recipient, shadow: Option<&Payload>| {
        if round == 1 && sender == ProcessId(0) {
            return Payload::values([Value(1)]);
        }
        // Deterministic pseudo-random lies afterwards.
        let len = shadow.map_or(0, Payload::num_values);
        flip = flip
            .wrapping_mul(6364136223846793005)
            .wrapping_add(round as u64);
        Payload::Values(
            (0..len)
                .map(|i| Value(((flip >> (i % 17)) & 1) as u16))
                .collect(),
        )
    });
    let decisions = net.decide();
    for d in decisions.iter().flatten() {
        assert_eq!(*d, Value(1), "persistent value 1 lost: {decisions:?}");
    }
}

/// The Strong Persistence analogue for Algorithm C (Lemma 6): a value
/// held at more than n/2 correct intermediate vertices persists to the
/// decision.
#[test]
fn persistence_analogue_in_algorithm_c() {
    let n = 18;
    let t = 3;
    let faulty = ProcessSet::from_members(n, [ProcessId(0), ProcessId(7), ProcessId(8)]);
    let mut net = TestNet::new(AlgorithmSpec::AlgorithmC, n, t, Value(1), faulty);
    net.run_all(&mut |round, sender, _recipient, shadow: Option<&Payload>| {
        if round == 1 && sender == ProcessId(0) {
            return Payload::values([Value(1)]); // unanimity, then chaos
        }
        let len = shadow.map_or(0, Payload::num_values);
        Payload::Values((0..len).map(|i| Value((i % 2) as u16)).collect())
    });
    let decisions = net.decide();
    for d in decisions.iter().flatten() {
        assert_eq!(*d, Value(1), "persistent value 1 lost in C: {decisions:?}");
    }
}

/// The `L_p ⊆ faulty` invariant (§3): no correct processor ever lists a
/// correct processor as faulty, under any adversary in the suite.
#[test]
fn fault_lists_contain_only_faulty_processors() {
    for spec in [
        AlgorithmSpec::Exponential,
        AlgorithmSpec::AlgorithmA { b: 3 },
        AlgorithmSpec::AlgorithmB { b: 2 },
        AlgorithmSpec::Hybrid { b: 3 },
    ] {
        let (n, t) = match spec {
            AlgorithmSpec::Exponential => (7, 2),
            AlgorithmSpec::AlgorithmB { .. } => (13, 3),
            _ => (13, 4),
        };
        let faulty = ProcessSet::from_members(n, (0..t).map(|i| ProcessId(i + 1)));
        let mut net = TestNet::new(spec, n, t, Value(1), faulty.clone());
        let mut state = 1u64;
        while net.round < net.total_rounds() {
            net.step(&mut |round, _s, _r, shadow: Option<&Payload>| {
                let len = shadow.map_or(0, Payload::num_values);
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(round as u64);
                Payload::Values(
                    (0..len)
                        .map(|i| Value(((state >> (i % 13)) & 1) as u16))
                        .collect(),
                )
            });
            // Invariant holds after every single round.
            for p in net.correct() {
                for listed in net.protocols[p.index()].fault_list().iter() {
                    assert!(
                        faulty.contains(listed),
                        "{} wrongly listed correct {listed} in round {} ({})",
                        p,
                        net.round,
                        spec.name()
                    );
                }
            }
        }
        net.assert_correct(Value(1));
    }
}

/// Hidden Fault Lemma (§3): if an all-faulty-path internal node's
/// processor escapes discovery by `p`, then a majority value exists among
/// its children with at least `n − 2t + |L_p|` correct supporters.
#[test]
fn hidden_fault_lemma_on_stealthy_faults() {
    let n = 7;
    let t = 2;
    let faulty = ProcessSet::from_members(n, [ProcessId(1), ProcessId(2)]);
    let mut net =
        TestNet::new_inspectable(AlgorithmSpec::Exponential, n, t, Value(1), faulty.clone());
    // Stealthy: flip exactly one value per message — under the discovery
    // threshold, so the faults stay hidden.
    net.run_all(
        &mut |round, _sender, recipient, shadow: Option<&Payload>| match shadow {
            Some(p) if common::is_vector(p) && p.num_values() > 0 => {
                let vals = common::payload_values(p);
                let target = (round + recipient.index()) % vals.len();
                Payload::Values(
                    vals.iter()
                        .enumerate()
                        .map(|(i, v)| if i == target { Value(1 - v.raw()) } else { *v })
                        .collect(),
                )
            }
            Some(p) => p.clone(),
            None => Payload::Missing,
        },
    );

    let mut checked = 0usize;
    for p in net.correct() {
        let proto = &net.protocols[p.index()];
        let tree = proto.tree();
        let shape = *tree.shape();
        let l_p = proto.fault_list();
        let deepest = tree.deepest_level();
        for level in 1..deepest {
            shape.visit_level(level, &mut |idx, path, labels| {
                // Node αr with every processor in the path faulty and r
                // not discovered by p.
                let all_faulty = path.iter().all(|q| faulty.contains(*q));
                let r = *path.last().expect("non-root");
                if !all_faulty || l_p.contains(r) {
                    return;
                }
                let child_vals: Vec<Value> = shape
                    .children_range(level, idx)
                    .map(|ci| tree.level(level + 1)[ci])
                    .collect();
                let majority = shifting_gears::eigtree::strict_majority(&child_vals)
                    .expect("Hidden Fault Lemma: majority must exist");
                let correct_support = child_vals
                    .iter()
                    .zip(labels)
                    .filter(|(v, q)| **v == majority && !faulty.contains(**q))
                    .count();
                assert!(
                    correct_support >= n - 2 * t + l_p.len(),
                    "support {correct_support} < n-2t+|L| at {path:?} for {p}"
                );
                checked += 1;
            });
        }
    }
    assert!(checked > 0, "lemma never exercised");
}

/// Claim before Lemma 2: when the source is correct, `resolve_p(s)` equals
/// `tree_p(s)` — the source's broadcast value — for every correct `p`.
#[test]
fn claim_source_correct_resolve_equals_root() {
    let n = 7;
    let t = 2;
    let faulty = ProcessSet::from_members(n, [ProcessId(3), ProcessId(5)]);
    let mut net = TestNet::new_inspectable(AlgorithmSpec::Exponential, n, t, Value(1), faulty);
    net.run_all(&mut |_round, _s, _r, shadow: Option<&Payload>| {
        // Worst consistent lie: flip everything.
        match shadow {
            Some(p) if common::is_vector(p) => common::flip_values(p),
            _ => Payload::Missing,
        }
    });
    let converted = converted_trees(&net, Conversion::Resolve);
    for (p, c) in &converted {
        assert_eq!(
            c.root(),
            Res::Val(net.protocols[p.index()].tree().root()),
            "resolve(s) != tree(s) at {p}"
        );
        assert_eq!(c.root(), Res::Val(Value(1)));
    }
}

/// Remark 2 (§4.2): under `resolve'`, the converted value of a node
/// corresponding to a *correct* processor is never ⊥.
#[test]
fn remark_2_correct_nodes_never_resolve_to_bottom() {
    let n = 7;
    let t = 2;
    let faulty = ProcessSet::from_members(n, [ProcessId(0), ProcessId(4)]);
    let mut net = TestNet::new_inspectable(AlgorithmSpec::ExponentialPrime, n, t, Value(1), faulty);
    net.run_all(&mut |round, sender, recipient, shadow: Option<&Payload>| {
        if round == 1 && sender == ProcessId(0) {
            return Payload::values([Value((recipient.index() % 2) as u16)]);
        }
        match shadow {
            Some(p) if common::is_vector(p) && recipient.index() % 2 == 0 => common::flip_values(p),
            Some(p) => p.clone(),
            None => Payload::Missing,
        }
    });
    let converted = converted_trees(&net, Conversion::ResolvePrime { t });
    let shape = *net.protocols[1].tree().shape();
    let deepest = net.protocols[1].tree().deepest_level();
    for level in 1..=deepest {
        shape.visit_level(level, &mut |idx, path, _labels| {
            let q = *path.last().expect("non-root");
            if net.faulty.contains(q) {
                return;
            }
            for (p, c) in &converted {
                assert_ne!(
                    c.level(level)[idx],
                    Res::Bottom,
                    "{p} resolved correct node {path:?} to ⊥"
                );
            }
        });
    }
}

/// Corollary 2 (§4.2): if two correct processors obtain *different*
/// non-⊥ converted values for an all-faulty-path node `αr`, then `r` is
/// in both of their fault lists by the end of round |αr|+1.
#[test]
fn corollary_2_divergent_nodes_imply_mutual_discovery() {
    let n = 7;
    let t = 2;
    // The sequence αr starts with the source, so the corollary's premise
    // "all processors in αr are faulty" requires a faulty source too.
    let faulty = ProcessSet::from_members(n, [ProcessId(0), ProcessId(2)]);
    let mut net = TestNet::new_inspectable(
        AlgorithmSpec::ExponentialPrime,
        n,
        t,
        Value(1),
        faulty.clone(),
    );
    // Blatant per-recipient randomness to force divergence somewhere.
    let mut state = 99u64;
    net.run_all(&mut |round, sender, recipient, shadow: Option<&Payload>| {
        let len = shadow
            .map_or(0, Payload::num_values)
            .max(usize::from(round == 1 && sender == ProcessId(0)));
        state = state
            .wrapping_mul(2862933555777941757)
            .wrapping_add((round * 31 + recipient.index()) as u64);
        Payload::Values(
            (0..len)
                .map(|i| Value(((state >> (i % 11)) & 1) as u16))
                .collect(),
        )
    });
    let converted = converted_trees(&net, Conversion::ResolvePrime { t });
    let shape = *net.protocols[0].tree().shape();
    let deepest = net.protocols[0].tree().deepest_level();
    let mut exercised = 0usize;
    for level in 1..=deepest {
        shape.visit_level(level, &mut |idx, path, _labels| {
            let all_faulty = path.iter().all(|q| faulty.contains(*q));
            if !all_faulty {
                return;
            }
            let r = *path.last().expect("non-root");
            for (pi, (p, cp)) in converted.iter().enumerate() {
                for (q, cq) in converted.iter().skip(pi + 1) {
                    let (vp, vq) = (cp.level(level)[idx], cq.level(level)[idx]);
                    if let (Res::Val(a), Res::Val(b)) = (vp, vq) {
                        if a != b {
                            exercised += 1;
                            assert!(
                                net.protocols[p.index()].fault_list().contains(r)
                                    && net.protocols[q.index()].fault_list().contains(r),
                                "divergent {path:?} but {r} not in both L_{p} and L_{q}"
                            );
                        }
                    }
                }
            }
        });
    }
    // The adversary is blatant enough that divergence (or ⊥) occurs; if
    // every all-faulty node happened to be common, nothing was checked —
    // accept that but record it.
    let _ = exercised;
}
