//! Interactive consistency and consensus, composed from the paper's
//! broadcast algorithms: every processor holds an input, `n` parallel
//! agreement instances (one per source) produce a common vector, and the
//! plurality of the vector is the consensus value.
//!
//! ```text
//! cargo run --example consensus_vector
//! ```

use shifting_gears::adversary::{FaultSelection, TwoFaced};
use shifting_gears::core::{run_consensus, AlgorithmSpec};
use shifting_gears::sim::{RunConfig, TraceEvent, Value};

fn main() {
    let n = 7;
    let t = 2;
    // Inputs: P0..P3 vote 1, P4..P6 vote 0.
    let inputs: Vec<Value> = (0..n).map(|i| Value(u16::from(i < 4))).collect();
    println!(
        "inputs    : {:?}",
        inputs.iter().map(|v| v.raw()).collect::<Vec<_>>()
    );

    let mut adversary = TwoFaced::new(FaultSelection::without_source());
    let config = RunConfig::new(n, t).with_trace();
    let outcome = run_consensus(
        AlgorithmSpec::Exponential,
        &config,
        inputs.clone(),
        &mut adversary,
    );

    println!("faulty    : {}", outcome.faulty);
    println!("rounds    : {}", outcome.rounds_used);
    // Every correct processor logged its agreed vector as a trace note.
    for e in outcome.trace.entries() {
        if let TraceEvent::Note { text } = &e.event {
            if text.contains("vector") {
                println!("{} agreed on {}", e.who, text);
                break; // all identical; show one
            }
        }
    }
    println!("consensus : {:?}", outcome.decision());
    assert!(outcome.agreement());
    println!("\nAll correct processors agree on the vector and the consensus value. ✓");
}
