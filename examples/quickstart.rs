//! Quickstart: run the paper's hybrid algorithm on 16 processors with 5
//! Byzantine faults and inspect the outcome.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use shifting_gears::adversary::{FaultSelection, TwoFaced};
use shifting_gears::core::{execute, AlgorithmSpec, HybridSchedule};
use shifting_gears::sim::{RunConfig, Value};

fn main() {
    // A system of n = 16 processors tolerates t = ⌊(n−1)/3⌋ = 5 faults.
    let n = 16;
    let t = 5;
    let spec = AlgorithmSpec::Hybrid { b: 3 };

    // The adversary corrupts 5 processors (not the source) and plays
    // maximal consistent equivocation: one story to even-id recipients,
    // the flipped story to odd-id recipients.
    let mut adversary = TwoFaced::new(FaultSelection::without_source());

    let config = RunConfig::new(n, t).with_source_value(Value(1));
    let outcome = execute(spec, &config, &mut adversary).expect("valid parameters");

    let schedule = HybridSchedule::compute(n, 3);
    println!("algorithm        : {}", spec.name());
    println!("system           : n = {n}, t = {t}, source P0 broadcasts 1");
    println!("adversary        : {}", outcome.adversary);
    println!("faulty processors: {}", outcome.faulty);
    println!(
        "phases           : {} rounds of A, {} of B, {} of C (total {})",
        schedule.k_ab,
        schedule.k_bc,
        schedule.c_rounds,
        schedule.total_rounds()
    );
    println!("rounds executed  : {}", outcome.rounds_used);
    println!(
        "largest message  : {} values ({} bits)",
        outcome.metrics.max_message_values(),
        outcome.metrics.max_message_bits()
    );
    println!("total traffic    : {} bits", outcome.metrics.total_bits());
    println!("agreement        : {}", outcome.agreement());
    println!("validity         : {:?}", outcome.validity());
    println!("decision         : {:?}", outcome.decision());

    assert!(outcome.agreement() && outcome.validity() == Some(true));
    println!("\nAll correct processors decided the source's value. ✓");
}
