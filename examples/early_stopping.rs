//! Decision lock-in and the early-stopping head-room (DRS 1986 lineage).
//!
//! The paper's Algorithm C adapts Dolev, Reischuk & Strong's *Early
//! Stopping in Byzantine Agreement*. The schedules in this crate are
//! fixed-length, but the detect-or-persist structure means the decision
//! value usually locks in long before the schedule ends. This example
//! traces executions of the hybrid and Algorithm C under increasing fault
//! loads and prints when each correct processor's decision locked in —
//! the head-room a DRS-style early-stopping rule would harvest.
//!
//! ```text
//! cargo run --example early_stopping
//! ```

use shifting_gears::adversary::{DoubleTalk, FaultSelection};
use shifting_gears::analysis::lock_in;
use shifting_gears::core::{execute, AlgorithmSpec};
use shifting_gears::sim::{Adversary, NoFaults, RunConfig, Value};

fn sweep(spec: AlgorithmSpec, n: usize, t: usize) {
    println!(
        "{} at n = {n}, t = {t} (schedule: {} rounds)",
        spec.name(),
        spec.rounds(n, t)
    );
    println!("  f   lock-in   head-room   per-processor lock-ins");
    for f in 0..=t {
        let config = RunConfig::new(n, t)
            .with_source_value(Value(1))
            .with_trace();
        let mut none = NoFaults;
        let mut split;
        let adversary: &mut dyn Adversary = if f == 0 {
            &mut none
        } else {
            split = DoubleTalk::new(FaultSelection::with_source().limit(f));
            &mut split
        };
        let outcome = execute(spec, &config, adversary).expect("valid parameters");
        assert!(outcome.agreement());
        let report = lock_in(&outcome);
        let per: Vec<String> = report
            .per_processor
            .iter()
            .map(|l| l.map_or("-".to_string(), |r| r.to_string()))
            .collect();
        println!(
            "  {:<3} {:<9} {:<11} [{}]",
            f,
            report.system_lock_in().unwrap_or(0),
            report.headroom().unwrap_or(0),
            per.join(" ")
        );
    }
    println!();
}

/// The engine's status-driven run loop harvesting the head-room for
/// real: the early-stopping families terminate as soon as every correct
/// processor is ready, so `rounds_used` undercuts the schedule whenever
/// the adversary exposes fewer than `t` faults.
fn harvested(spec: AlgorithmSpec, n: usize, t: usize) {
    println!(
        "{} at n = {n}, t = {t} (schedule: {} rounds, early stopping ON)",
        spec.name(),
        spec.rounds(n, t)
    );
    println!("  f   rounds-used   saved");
    for f in 0..=t {
        let config = RunConfig::new(n, t).with_source_value(Value(1));
        let mut none = NoFaults;
        let mut split;
        let adversary: &mut dyn Adversary = if f == 0 {
            &mut none
        } else {
            split = DoubleTalk::new(FaultSelection::with_source().limit(f));
            &mut split
        };
        let outcome = execute(spec, &config, adversary).expect("valid parameters");
        assert!(outcome.agreement());
        println!(
            "  {:<3} {:<13} {}",
            f,
            outcome.rounds_used,
            outcome.rounds_saved()
        );
    }
    println!();
}

fn main() {
    // The hybrid: fault-free runs lock in at round 1 (persistence from
    // the source round); attacked runs lock in at the first A-block
    // conversion, still leaving most of the schedule as head-room.
    sweep(AlgorithmSpec::Hybrid { b: 3 }, 16, 5);

    // Algorithm C locks in at its first rep-gather round even under a
    // split-brain source — Proposition 4's detect-or-persist step.
    sweep(AlgorithmSpec::AlgorithmC, 32, 4);

    // The quiescent and lock-detecting families actually cash the
    // head-room in: the engine stops them as soon as every correct
    // processor is ready (sg_sim::set_early_stopping(false) restores
    // fixed-length schedules).
    harvested(AlgorithmSpec::DolevStrong, 7, 4);
    harvested(AlgorithmSpec::OptimalKing, 16, 5);

    println!(
        "The gap between lock-in and schedule length is the early-stopping\n\
         opportunity Dolev–Reischuk–Strong (1986) formalize as min(f+2, t+1);\n\
         the tree machines measure it, the king and Dolev–Strong families\n\
         harvest it via the engine's status-driven round loop."
    );
}
