//! Trace a hybrid execution round by round: watch the algorithm start in
//! Algorithm A, shift into Algorithm B, then into Algorithm C, while the
//! adversary reveals one fault per block and the correct processors'
//! fault lists grow.
//!
//! ```text
//! cargo run --example gear_shift_trace
//! ```

use shifting_gears::adversary::{ChainRevealer, FaultSelection};
use shifting_gears::analysis::chart::message_profile;
use shifting_gears::core::{execute, AlgorithmSpec, HybridSchedule, RoundAction};
use shifting_gears::sim::{ProcessId, RunConfig, TraceEvent, Value};

fn main() {
    let n = 13;
    let b = 3;
    let schedule = HybridSchedule::compute(n, b);
    let t = schedule.t;
    let spec = AlgorithmSpec::Hybrid { b };
    let plan = spec.plan(n, t).expect("hybrid has a plan");

    println!(
        "Hybrid(b={b}) on n={n}, t={t}: k_AB={} (A), k_BC={} (B), {} rounds of C; \
         thresholds t_AB={}, t_AC={}\n",
        schedule.k_ab, schedule.k_bc, schedule.c_rounds, schedule.t_ab, schedule.t_ac
    );

    // One fault starts equivocating every b rounds.
    let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, b, 0xFEED);
    let config = RunConfig::new(n, t)
        .with_source_value(Value(1))
        .with_trace();
    let outcome = execute(spec, &config, &mut adversary).expect("valid parameters");

    let witness = (0..n)
        .map(ProcessId)
        .find(|p| !outcome.faulty.contains(*p))
        .expect("some correct processor");
    println!(
        "faulty: {}; tracing correct processor {witness}\n",
        outcome.faulty
    );

    for round in 1..=outcome.rounds_used {
        let phase = if round <= schedule.k_ab {
            "A"
        } else if round <= schedule.k_ab + schedule.k_bc {
            "B"
        } else {
            "C"
        };
        let action = match plan[round - 1] {
            RoundAction::Initial => "source broadcast".to_string(),
            RoundAction::Gather { convert: None } => "gather".to_string(),
            RoundAction::Gather { convert: Some(s) } => {
                format!("gather + shift via {}", s.conversion.name())
            }
            RoundAction::RepFirstGather => "C: store intermediate vertices".to_string(),
            RoundAction::RepGather => "C: gather/reorder/shift 3→2".to_string(),
        };
        println!("round {round:>2} [{phase}] {action}");
        for entry in outcome.trace.in_round(round) {
            if entry.who != witness {
                continue;
            }
            match &entry.event {
                TraceEvent::Discovered {
                    suspect,
                    during_conversion,
                } => println!(
                    "          {witness} discovered {suspect} faulty{}",
                    if *during_conversion {
                        " (during conversion)"
                    } else {
                        ""
                    }
                ),
                TraceEvent::Shift {
                    conversion,
                    preferred,
                } => println!("          shift: preferred value = {preferred} ({conversion})"),
                TraceEvent::Preferred { value } => {
                    println!("          preferred value = {value}")
                }
                _ => {}
            }
        }
    }

    println!("\ndecisions: {:?}", outcome.decisions);
    outcome.assert_correct();
    println!("agreement + validity hold. ✓");

    // The shape of the gears: per-round largest message, log scale. The
    // A phase's exponential levels tower over B's smaller blocks and C's
    // O(n) rounds.
    println!("\n{}", message_profile(&outcome, 48));
}
