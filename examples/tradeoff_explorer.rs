//! Explore the rounds / message-length / local-computation trade-off of
//! §1 and §4: sweep the block parameter `b` and compare Algorithm A,
//! Algorithm B, the hybrid, and the analytical Coan model.
//!
//! ```text
//! cargo run --release --example tradeoff_explorer [n]
//! ```

use shifting_gears::analysis::chart::{bar_chart, Series};
use shifting_gears::analysis::experiments::{experiment_tradeoff, Scale};
use shifting_gears::analysis::{fmt_count, Table};
use shifting_gears::core::schedule::{algorithm_a_rounds_exact, algorithm_b_rounds_exact};
use shifting_gears::core::{t_a, t_b, HybridSchedule};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);

    // Closed-form sweep first: wide b range, no simulation needed.
    let ta = t_a(n);
    let tb = t_b(n);
    let mut table = Table::new(
        format!("Round schedules at n = {n} (closed form)"),
        format!(
            "Algorithm A and the hybrid tolerate t = {ta}; Algorithm B \
             tolerates t = {tb}. Message size grows as n^(b−1) values; \
             smaller b trades rounds for shorter messages."
        ),
        vec![
            "b",
            "A rounds",
            "hybrid rounds",
            "B rounds",
            "max msg values (≈ n^(b−1))",
        ],
    );
    for b in 3..ta.max(4) {
        let a = algorithm_a_rounds_exact(ta, b);
        let h = if (3..=ta).contains(&b) {
            HybridSchedule::compute(n, b).total_rounds().to_string()
        } else {
            "—".to_string()
        };
        let bb = if b < tb {
            algorithm_b_rounds_exact(tb, b).to_string()
        } else {
            format!("{} (exp)", tb + 1)
        };
        table.push_row(vec![
            b.to_string(),
            a.to_string(),
            h,
            bb,
            fmt_count(shifting_gears::analysis::bounds::blocked_max_message_values(n, b)),
        ]);
    }
    println!("{table}");

    // Visualize the rounds trade-off.
    let mut a_pts = Vec::new();
    let mut h_pts = Vec::new();
    for b in 3..ta.max(4) {
        a_pts.push((format!("b={b}"), algorithm_a_rounds_exact(ta, b) as f64));
        if (3..=ta).contains(&b) {
            h_pts.push((
                format!("b={b}"),
                HybridSchedule::compute(n, b).total_rounds() as f64,
            ));
        }
    }
    println!(
        "{}",
        bar_chart(
            &[
                Series::new("Algorithm A rounds", a_pts),
                Series::new("Hybrid rounds", h_pts),
            ],
            40,
            false,
        )
    );

    // Then the measured trade-off (runs real executions; Quick keeps the
    // example fast — use the repro binary for the full sweep).
    println!("{}", experiment_tradeoff(Scale::Quick));
    println!(
        "Run `cargo run --release -p sg-bench --bin repro -- --exp tradeoff` \
         for the full measured sweep."
    );
}
