//! Quickstart for the sweep service (`sg-serve/1`), in-process edition.
//!
//! The shell version of this example is two terminals:
//!
//! ```text
//! $ sg serve --port 7411 &
//! $ sg ping   --addr 127.0.0.1:7411
//! $ sg submit --addr 127.0.0.1:7411 --alg optimal-king --n 16 --t 5 --seeds 100
//! ```
//!
//! Here we do the same through the library: start a daemon on an
//! ephemeral port, submit a grid, watch cells stream back in grid
//! order, and check the summary fingerprint against a local batch run
//! of the identical plan — the determinism contract the service is
//! built around.
//!
//! Run with `cargo run --release --example sweep_service`.

use std::time::Duration;

use shifting_gears::adversary::FaultSelection;
use shifting_gears::analysis::{AdversaryFamily, SweepConfig, SweepPlan};
use shifting_gears::core::AlgorithmSpec;
use shifting_gears::serve::{serve, Bind, Client, ServeOptions};

fn main() {
    // A 2×2-cell grid: two king-family algorithms against two adversary
    // families, 50 seeded runs per cell.
    let plan = SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 16, 5),
            SweepConfig::traced(AlgorithmSpec::PhaseKing, 16, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::chain_revealer(FaultSelection::without_source(), 2, 2),
        ],
        50,
    );

    // Start the daemon on an ephemeral localhost port ("unix:/tmp/sg.sock"
    // works too) and connect a client.
    let daemon = serve(&Bind::Tcp("127.0.0.1:0".into()), ServeOptions::default())
        .expect("bind the sweep service");
    let addr = daemon.tcp_addr().expect("tcp address").to_string();
    println!("daemon listening on {addr}");
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");

    // Submit, then stream: cells arrive incrementally, in grid order,
    // each a full CellReport with samples and summary statistics.
    let job = client.submit(&plan).expect("submit the grid");
    println!(
        "job {} accepted: {} cells, {} runs\n",
        job.job, job.cells, job.total_runs
    );
    let streamed = client
        .collect(job, |index, cell| {
            print!("cell {index}: {}", cell.render_line());
        })
        .expect("stream the results");

    // The streamed report is bit-identical to running the same plan
    // locally — same samples, same statistics, same fingerprint.
    let batch = plan.run();
    assert_eq!(streamed.report, batch);
    assert_eq!(streamed.fingerprint, batch.fingerprint());
    println!(
        "\nfingerprint {:016x} — identical to the local batch run",
        streamed.fingerprint
    );
    daemon.shutdown();
}
