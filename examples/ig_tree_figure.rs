//! Reproduce the paper's Figure 1: the Information Gathering Tree, with
//! each node reading "r said q said … the source said v".
//!
//! Builds the 3-round tree of a correct processor in a 5-processor system
//! where one processor (P3) lies about everything.
//!
//! ```text
//! cargo run --example ig_tree_figure
//! ```

use shifting_gears::eigtree::{convert, render_tree, tree_to_dot, Conversion, IgTree, Res};
use shifting_gears::sim::{ProcessId, Value};

fn main() {
    let n = 5;
    let t = 1;
    let source = ProcessId(0);
    let liar = ProcessId(3);

    // tree_p for a correct processor p = P1. Round 1: the source said 1.
    let mut tree = IgTree::new(n, source);
    tree.set_root(Value(1));

    // Round 2: everyone relays the root; the liar flips it.
    tree.append_level(
        |_parent, sender| {
            if sender == liar {
                Value(0)
            } else {
                Value(1)
            }
        },
    );

    // Round 3: everyone relays level 1; the liar again flips everything.
    let level1: Vec<Value> = tree.level(1).to_vec();
    let shape = *tree.shape();
    tree.append_level(|parent, sender| {
        if sender == liar {
            Value(1 - level1[parent].raw())
        } else {
            let _ = shape;
            level1[parent]
        }
    });

    println!("Figure 1 — the Information Gathering Tree of processor P1");
    println!("(n = {n}, t = {t}; P3 is Byzantine and flips every value)\n");
    print!("{}", render_tree(&tree, 2));

    println!("\nGraphviz form (pipe to `dot -Tsvg` to render):\n");
    print!("{}", tree_to_dot(&tree, 2));

    // Data conversion: recursive majority voting out-votes the liar.
    let converted = convert(&tree, Conversion::Resolve);
    println!("\nresolve(s) = {}", converted.root());
    assert_eq!(converted.root(), Res::Val(Value(1)));
    println!("The recursive majority vote recovers the source's value 1. ✓");
}
