//! Run every algorithm against the whole adversary suite at maximum
//! resilience and print the score matrix — every cell must read "ok".
//!
//! ```text
//! cargo run --release --example adversary_gauntlet
//! ```

use shifting_gears::adversary::standard_suite;
use shifting_gears::core::{execute, AlgorithmSpec};
use shifting_gears::sim::{RunConfig, Value};

fn main() {
    // (spec, n, t) at each algorithm's maximum resilience for a small n.
    let algorithms: Vec<(AlgorithmSpec, usize, usize)> = vec![
        (AlgorithmSpec::Exponential, 7, 2),
        (AlgorithmSpec::ExponentialPrime, 7, 2),
        (AlgorithmSpec::AlgorithmA { b: 3 }, 13, 4),
        (AlgorithmSpec::AlgorithmB { b: 2 }, 13, 3),
        (AlgorithmSpec::AlgorithmC, 18, 3),
        (AlgorithmSpec::Hybrid { b: 3 }, 13, 4),
        (AlgorithmSpec::PhaseKing, 9, 2),
        (AlgorithmSpec::PhaseQueen, 9, 2),
        (AlgorithmSpec::DolevStrong, 6, 3),
    ];

    let adversary_names: Vec<String> = standard_suite(7).iter().map(|a| a.name()).collect();
    let width = adversary_names.iter().map(String::len).max().unwrap_or(8);

    print!("{:<width$}  ", "adversary");
    for (spec, _, _) in &algorithms {
        print!("{:<18}", spec.name());
    }
    println!();

    let mut failures = 0usize;
    for (row, name) in adversary_names.iter().enumerate() {
        print!("{name:<width$}  ");
        for &(spec, n, t) in &algorithms {
            // Fresh adversary per cell (strategies are stateful).
            let mut adversary = standard_suite(7).remove(row);
            let config = RunConfig::new(n, t).with_source_value(Value(1));
            let cell = match execute(spec, &config, adversary.as_mut()) {
                Ok(outcome) => {
                    if outcome.agreement() && outcome.validity() != Some(false) {
                        format!("ok ({}r)", outcome.rounds_used)
                    } else {
                        failures += 1;
                        "VIOLATED".to_string()
                    }
                }
                Err(e) => {
                    failures += 1;
                    format!("error: {e}")
                }
            };
            print!("{cell:<18}");
        }
        println!();
    }

    println!();
    if failures == 0 {
        println!(
            "All {} algorithm × adversary cells reached Byzantine agreement. ✓",
            algorithms.len() * adversary_names.len()
        );
    } else {
        println!("{failures} cells FAILED");
        std::process::exit(1);
    }
}
