//! Compose your own shift schedule — §6's open question, interactively.
//!
//! The paper ends by asking when it is safe to shift between algorithms.
//! This example assembles several compositions through
//! [`ShiftPlanBuilder`], shows which ones the §4.4 safety conditions
//! accept (and why the rest are rejected), and runs the accepted ones
//! against a split-brain adversary at full `⌊(n−1)/3⌋` resilience.
//!
//! ```text
//! cargo run --example shift_composer
//! ```

use shifting_gears::adversary::{DoubleTalk, FaultSelection};
use shifting_gears::core::compose::ShiftPlanBuilder;
use shifting_gears::core::t_a;
use shifting_gears::sim::{RunConfig, Value};

fn main() {
    let n = 16;
    let t = t_a(n);
    println!("shift compositions at n = {n}, t = {t}\n");

    let candidates: Vec<(&str, ShiftPlanBuilder)> = vec![
        (
            "the paper's hybrid shape: A(3)x2 -> B(3) -> C(4)",
            ShiftPlanBuilder::new(n, t)
                .a_blocks(3, 2)
                .b_blocks(3, 1)
                .c_tail(4),
        ),
        (
            "skip B entirely:          A(4)x2 -> C(2)",
            ShiftPlanBuilder::new(n, t).a_blocks(4, 2).c_tail(2),
        ),
        (
            "close with Phase King:    A(3) -> King",
            ShiftPlanBuilder::new(n, t).a_blocks(3, 1).king_tail(),
        ),
        (
            "go straight to B:         B(3)x3 -> C(4)   (unsafe!)",
            ShiftPlanBuilder::new(n, t).b_blocks(3, 3).c_tail(4),
        ),
        (
            "shift to C too early:     A(3) -> C(6)     (unsafe!)",
            ShiftPlanBuilder::new(n, t).a_blocks(3, 1).c_tail(6),
        ),
    ];

    for (label, builder) in candidates {
        println!("{label}");
        match builder.build() {
            Ok(composition) => {
                let config = RunConfig::new(n, t).with_source_value(Value(1));
                let mut adversary = DoubleTalk::new(FaultSelection::without_source());
                let outcome = composition.execute(&config, &mut adversary);
                println!(
                    "  SAFE      {} rounds; under {}: agreement={}, decision={:?}",
                    composition.rounds(),
                    outcome.adversary,
                    outcome.agreement(),
                    outcome.decision()
                );
                assert!(outcome.agreement() && outcome.validity() == Some(true));
            }
            Err(e) => {
                println!("  REJECTED  {e}");
            }
        }
        println!();
    }

    println!("Every accepted composition reached agreement with validity. ✓");
}
